"""Socket-distributed execution backend.

:class:`SocketBackend` is an :class:`~repro.engine.backends.ExecutionBackend`
whose workers are separate *processes connected over sockets* -- Unix-domain
on one machine, TCP across machines -- instead of children of a
``ProcessPoolExecutor``.  The backend is the server: it binds a listener and
workers dial in (``repro-campaign worker --connect ADDR``), which is what
lets a daemon's worker pool persist across runs and hosts.

Transport design mirrors the shipping split of
:mod:`repro.engine.backends`:

* the work function -- with the whole campaign context it closes over --
  is pickled **once per stream** into a context frame, and shipped **once
  per (worker connection, stream)**, like ``_SharedShipment``'s one-time
  segment;
* task submissions then carry only the bare work item, tagged with the
  context id and a sequence number.

Fault tolerance: workers heartbeat; a worker that closes its connection,
goes silent past ``heartbeat_timeout``, or sits on one task past
``task_timeout`` is declared dead and its in-flight item is *requeued* onto
the survivors (up to ``max_task_retries`` deaths per item, after which the
item is reported failed).  Requeueing cannot perturb results: every item
carries its own :class:`numpy.random.SeedSequence` material and outcomes
are keyed by sequence number, so completion order, worker count and worker
deaths are all invisible in the output -- bit-identical to
:class:`~repro.engine.backends.SerialBackend`.

Threading model: one accept thread, one reader thread per worker, one
dispatcher and one monitor thread, all sharing a single lock/condition.
Frames are sent outside the lock under a per-connection send lock so a slow
peer cannot stall the scheduler.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional, Sequence, Set

from ..circuit.errors import EngineError
from ..engine.backends import (ExecutionBackend, ResultCallback, WorkFn,
                               WorkItem, WorkStream)
from .protocol import (PROTOCOL_VERSION, ProtocolError, create_listener,
                       encode_frame, recv_frame)

__all__ = ["SocketBackend"]


class _Task:
    """One submitted item: where it came from, where it currently is."""

    __slots__ = ("seq", "item", "stream", "attempts", "worker", "sent_at")

    def __init__(self, seq: int, item: WorkItem, stream: "_SocketWorkStream"):
        self.seq = seq
        self.item = item
        self.stream = stream
        self.attempts = 0          # worker deaths suffered so far
        self.worker = None         # _Worker currently executing it, if any
        self.sent_at = 0.0


class _Worker:
    """One connected worker process."""

    __slots__ = ("name", "sock", "send_lock", "pid", "last_seen", "current",
                 "contexts", "alive", "proc")

    def __init__(self, name: str, sock: socket.socket, pid: int):
        self.name = name
        self.sock = sock
        self.send_lock = threading.Lock()
        self.pid = pid
        self.last_seen = time.monotonic()
        self.current: Optional[int] = None   # seq of the in-flight task
        self.contexts: Set[int] = set()      # ctx ids already shipped
        self.alive = True
        self.proc = None                     # Popen handle if we spawned it


class _SocketWorkStream(WorkStream):
    """Stream facade over the backend's shared scheduler state."""

    def __init__(self, backend: "SocketBackend", fn: WorkFn) -> None:
        self._backend = backend
        self.ctx_id = backend._new_ctx_id()
        try:
            self.ctx_frame = encode_frame(("context", self.ctx_id, fn))
        except Exception as exc:
            raise EngineError(
                "work function is not picklable for the socket backend "
                "(closures and lambdas only work serially): %s" % exc
            ) from exc
        self.closed = False
        self.outcomes: deque = deque()   # (item, ok, value, seq)
        self.open = 0                    # submitted, not yet delivered

    def submit(self, item: WorkItem) -> int:
        return self._backend._submit(self, item)

    def next_outcome(self):
        item, ok, value, _seq = self._backend._next_outcome(self)
        return item, ok, value

    def close(self) -> None:
        self._backend._close_stream(self)


class SocketBackend(ExecutionBackend):
    """Fan work out to worker processes connected over sockets.

    Parameters
    ----------
    address:
        Where to listen for workers: ``unix:PATH``, ``tcp:HOST:PORT`` (port
        0 picks a free port) or a bare Unix-socket path.  The resolved
        address is exposed as :attr:`address` -- hand it to
        ``repro-campaign worker --connect``.
    spawn_workers:
        Convenience: launch this many local worker subprocesses immediately
        (``python -m repro.engine.cli worker --connect <address>``).  Zero
        (the default) means workers are managed externally.
    worker_wait:
        Seconds :meth:`WorkStream.next_outcome` tolerates having queued
        work but *zero connected workers* before raising, so a backend
        nobody ever connects to fails loudly instead of hanging.
    heartbeat_timeout:
        A worker silent for longer than this (no heartbeat, no result) is
        declared dead and its in-flight item requeued.
    task_timeout:
        Optional per-task wall-clock budget.  A worker holding one item
        longer is declared dead (hung or livelocked) and, if we spawned it,
        killed; the item is requeued.  None disables the budget.
    max_task_retries:
        How many worker deaths one item survives before being reported as
        failed.  Retries re-run the item from its own seed material, so a
        retried item is bit-identical to a first-try item.
    """

    name = "socket"

    def __init__(self, address: str = "tcp:127.0.0.1:0",
                 spawn_workers: int = 0,
                 worker_wait: float = 30.0,
                 heartbeat_timeout: float = 15.0,
                 task_timeout: Optional[float] = None,
                 max_task_retries: int = 2) -> None:
        if spawn_workers < 0:
            raise EngineError(
                "spawn_workers must be >= 0, got %d" % spawn_workers)
        if max_task_retries < 0:
            raise EngineError(
                "max_task_retries must be >= 0, got %d" % max_task_retries)
        self._listener, self.address = create_listener(address)
        self.worker_wait = worker_wait
        self.heartbeat_timeout = heartbeat_timeout
        self.task_timeout = task_timeout
        self.max_task_retries = max_task_retries
        self._spawn_target = spawn_workers

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._queue: deque = deque()            # seqs awaiting a worker
        self._tasks: Dict[int, _Task] = {}      # seq -> _Task (undelivered)
        self._workers: Dict[str, _Worker] = {}
        self._next_seq = 0
        self._next_ctx = 0
        self._next_worker = 0
        self._closed = False
        self._procs: List[Any] = []

        self._threads = [
            threading.Thread(target=self._accept_loop,
                             name="socket-backend-accept", daemon=True),
            threading.Thread(target=self._dispatch_loop,
                             name="socket-backend-dispatch", daemon=True),
            threading.Thread(target=self._monitor_loop,
                             name="socket-backend-monitor", daemon=True),
        ]
        for thread in self._threads:
            thread.start()
        for _ in range(spawn_workers):
            self.spawn_worker()

    # ------------------------------------------------------------- lifecycle
    @property
    def workers(self) -> int:  # type: ignore[override]
        """Connected worker count (or the spawn target before any connect)."""
        with self._lock:
            n = sum(1 for w in self._workers.values() if w.alive)
        return n or self._spawn_target or 1

    def spawn_worker(self, crash_after: Optional[int] = None,
                     max_tasks: Optional[int] = None) -> Any:
        """Launch one local worker subprocess connected to this backend.

        ``crash_after``/``max_tasks`` forward the worker CLI's flags; the
        former exists for fault-injection tests (the worker hard-exits on
        receiving task ``crash_after + 1``).
        """
        import subprocess

        import repro
        cmd = [sys.executable, "-m", "repro.engine.cli", "worker",
               "--connect", self.address]
        if crash_after is not None:
            cmd += ["--crash-after", str(crash_after)]
        if max_tasks is not None:
            cmd += ["--max-tasks", str(max_tasks)]
        env = dict(os.environ)
        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
            repro.__file__)))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (src_dir + os.pathsep + existing
                             if existing else src_dir)
        proc = subprocess.Popen(cmd, env=env)
        with self._lock:
            self._procs.append(proc)
        return proc

    def close(self) -> None:
        """Disconnect workers, reap spawned processes, close the listener."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            workers = list(self._workers.values())
            procs = list(self._procs)
            self._cond.notify_all()
        bye = encode_frame(("bye",))
        for worker in workers:
            try:
                with worker.send_lock:
                    worker.sock.sendall(bye)
            except OSError:
                pass
            try:
                worker.sock.close()
            except OSError:
                pass
        try:
            self._listener.close()
        except OSError:
            pass
        family_unix = self.address.startswith("unix:")
        if family_unix:
            try:
                os.unlink(self.address[len("unix:"):])
            except OSError:
                pass
        for proc in procs:
            try:
                proc.wait(timeout=5.0)
            except Exception:
                proc.kill()
                proc.wait()

    def __enter__(self) -> "SocketBackend":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------- backend surface
    def stream(self, fn: WorkFn) -> WorkStream:
        with self._lock:
            if self._closed:
                raise EngineError("socket backend is closed")
        return _SocketWorkStream(self, fn)

    def map_items(self, fn: WorkFn, items: Sequence[WorkItem],
                  on_result: ResultCallback = None) -> List[Any]:
        if not items:
            return []
        ordered: List[Any] = [None] * len(items)
        with self.stream(fn) as stream:
            positions: Dict[int, int] = {}
            for position, item in enumerate(items):
                positions[stream.submit(item)] = position
            failure: Optional[BaseException] = None
            # Everything is already submitted, so drain it all: items that
            # complete after the first failure must still reach on_result
            # (which e.g. persists results to the cache), matching the
            # multiprocess backend's failure semantics.
            for _ in range(len(items)):
                _item, ok, value, seq = self._next_outcome(stream)
                if ok:
                    ordered[positions[seq]] = value
                    if on_result is not None:
                        on_result(value)
                elif failure is None:
                    failure = value
            if failure is not None:
                raise failure
        return ordered

    # --------------------------------------------------- stream-facing hooks
    def _new_ctx_id(self) -> int:
        with self._lock:
            self._next_ctx += 1
            return self._next_ctx

    def _submit(self, stream: _SocketWorkStream, item: WorkItem) -> int:
        with self._cond:
            if self._closed:
                raise EngineError("socket backend is closed")
            if stream.closed:
                raise EngineError("work stream is closed")
            self._next_seq += 1
            seq = self._next_seq
            self._tasks[seq] = _Task(seq, item, stream)
            self._queue.append(seq)
            stream.open += 1
            self._cond.notify_all()
        return seq

    def _next_outcome(self, stream: _SocketWorkStream):
        deadline: Optional[float] = None
        with self._cond:
            while True:
                if stream.outcomes:
                    stream.open -= 1
                    return stream.outcomes.popleft()
                if stream.open == 0:
                    raise EngineError(
                        "no submitted work is pending on the stream")
                if self._closed:
                    raise EngineError("socket backend is closed")
                if any(w.alive for w in self._workers.values()):
                    deadline = None
                else:
                    now = time.monotonic()
                    if deadline is None:
                        deadline = now + self.worker_wait
                    elif now >= deadline:
                        raise EngineError(
                            "no workers connected to %s within %.0fs; start "
                            "some with 'repro-campaign worker --connect %s'"
                            % (self.address, self.worker_wait, self.address))
                self._cond.wait(0.2)

    def _close_stream(self, stream: _SocketWorkStream) -> None:
        with self._cond:
            if stream.closed:
                return
            stream.closed = True
            # Abandon queued items; in-flight results are discarded on
            # arrival (see _handle_result).
            kept = deque()
            for seq in self._queue:
                task = self._tasks.get(seq)
                if task is not None and task.stream is stream:
                    del self._tasks[seq]
                else:
                    kept.append(seq)
            self._queue = kept
            stream.outcomes.clear()
            holders = [w for w in self._workers.values()
                       if w.alive and stream.ctx_id in w.contexts]
            for worker in holders:
                worker.contexts.discard(stream.ctx_id)
            self._cond.notify_all()
        drop = encode_frame(("drop", stream.ctx_id))
        for worker in holders:
            try:
                with worker.send_lock:
                    worker.sock.sendall(drop)
            except OSError:
                pass  # the reader thread will notice the dead connection

    # ------------------------------------------------------- service threads
    def _accept_loop(self) -> None:
        while True:
            try:
                sock, _addr = self._listener.accept()
            except OSError:
                return  # listener closed by close()
            with self._lock:
                if self._closed:
                    sock.close()
                    return
            if sock.family != socket.AF_UNIX:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(target=self._reader_loop, args=(sock,),
                             name="socket-backend-reader", daemon=True).start()

    def _reader_loop(self, sock: socket.socket) -> None:
        try:
            hello = recv_frame(sock)
        except (ProtocolError, OSError):
            sock.close()
            return
        if (not isinstance(hello, tuple) or len(hello) != 2
                or hello[0] != "hello"
                or hello[1].get("version") != PROTOCOL_VERSION):
            sock.close()
            return
        with self._cond:
            if self._closed:
                sock.close()
                return
            self._next_worker += 1
            worker = _Worker("w%d" % self._next_worker, sock,
                             int(hello[1].get("pid", 0)))
            self._workers[worker.name] = worker
            self._cond.notify_all()
        while True:
            try:
                frame = recv_frame(sock)
            except (ProtocolError, OSError):
                frame = None
            if frame is None:
                break
            kind = frame[0]
            if kind == "heartbeat":
                with self._cond:
                    worker.last_seen = time.monotonic()
            elif kind == "result":
                _kind, _ctx_id, seq, ok, value = frame
                self._handle_result(worker, seq, ok, value)
        self._worker_died(worker)

    def _handle_result(self, worker: _Worker, seq: int, ok: bool,
                       value: Any) -> None:
        with self._cond:
            worker.last_seen = time.monotonic()
            if worker.current == seq:
                worker.current = None
            task = self._tasks.get(seq)
            if task is None or task.worker is not worker:
                # Stale: the task was requeued (timeout/heartbeat) and this
                # is the presumed-dead worker reporting in after all.  The
                # requeued copy is authoritative; drop the duplicate.
                self._cond.notify_all()
                return
            task.worker = None
            del self._tasks[seq]
            if not task.stream.closed:
                task.stream.outcomes.append((task.item, ok, value, seq))
            self._cond.notify_all()

    def _worker_died(self, worker: _Worker) -> None:
        with self._cond:
            if not worker.alive:
                return
            worker.alive = False
            self._workers.pop(worker.name, None)
            seq, worker.current = worker.current, None
            if seq is not None:
                task = self._tasks.get(seq)
                if task is not None and task.worker is worker:
                    task.worker = None
                    task.attempts += 1
                    if task.attempts > self.max_task_retries:
                        del self._tasks[seq]
                        if not task.stream.closed:
                            task.stream.outcomes.append((
                                task.item, False,
                                EngineError(
                                    "work item lost to %d worker deaths "
                                    "(crashed, hung or unreachable workers); "
                                    "giving up on it" % task.attempts),
                                seq))
                    else:
                        # Retry promptly, ahead of fresh work.
                        self._queue.appendleft(seq)
            self._cond.notify_all()
        try:
            worker.sock.close()
        except OSError:
            pass

    def _dispatch_loop(self) -> None:
        while True:
            with self._cond:
                assignment = self._take_assignment()
                while assignment is None and not self._closed:
                    self._cond.wait(0.2)
                    assignment = self._take_assignment()
                if assignment is None:
                    return  # closed
            worker, frames = assignment
            try:
                with worker.send_lock:
                    for frame in frames:
                        worker.sock.sendall(frame)
            except OSError:
                self._worker_died(worker)

    def _take_assignment(self):
        """Pair the oldest queued task with an idle worker (holding the lock)."""
        if not self._queue:
            return None
        idle = next((w for w in self._workers.values()
                     if w.alive and w.current is None), None)
        if idle is None:
            return None
        while self._queue:
            seq = self._queue.popleft()
            task = self._tasks.get(seq)
            if task is None or task.stream.closed:
                self._tasks.pop(seq, None)
                continue
            frames = []
            if task.stream.ctx_id not in idle.contexts:
                # Ship the campaign context once per (worker, stream); the
                # bytes were pickled once at stream creation.
                idle.contexts.add(task.stream.ctx_id)
                frames.append(task.stream.ctx_frame)
            try:
                frames.append(encode_frame(
                    ("task", task.stream.ctx_id, seq, task.item)))
            except Exception as exc:
                del self._tasks[seq]
                if not task.stream.closed:
                    task.stream.outcomes.append((
                        task.item, False,
                        EngineError("work item is not picklable: %s" % exc),
                        seq))
                self._cond.notify_all()
                continue
            task.worker = idle
            task.sent_at = time.monotonic()
            idle.current = seq
            return idle, frames
        return None

    def _monitor_loop(self) -> None:
        while True:
            with self._cond:
                if self._closed:
                    return
                now = time.monotonic()
                stale = []
                for worker in self._workers.values():
                    if not worker.alive:
                        continue
                    if now - worker.last_seen > self.heartbeat_timeout:
                        stale.append((worker, False))
                        continue
                    if (self.task_timeout is not None
                            and worker.current is not None):
                        task = self._tasks.get(worker.current)
                        if (task is not None
                                and now - task.sent_at > self.task_timeout):
                            stale.append((worker, True))
                procs = list(self._procs)
            for worker, hung in stale:
                if hung and worker.proc is None:
                    # A hung worker we did not spawn: match it to a spawned
                    # process by pid so it can be killed, else just drop the
                    # connection and let it die on its next send.
                    worker.proc = next(
                        (p for p in procs if p.pid == worker.pid), None)
                self._worker_died(worker)
                if hung and worker.proc is not None:
                    try:
                        worker.proc.kill()
                    except OSError:
                        pass
            for proc in procs:
                proc.poll()  # reap exited spawned workers promptly
            with self._cond:
                if self._closed:
                    return
                self._cond.wait(0.5)
