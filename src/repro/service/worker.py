"""The ``repro-campaign worker`` loop.

A worker dials a :class:`~repro.service.socket_backend.SocketBackend` (or a
daemon's worker socket), introduces itself with a hello frame, then
alternates between receiving frames and sending results:

* ``("context", ctx_id, fn)`` -- cache the work function for a run.  The
  context arrives once per connection per run; it carries the whole
  campaign closure (behavioral ADC, calibrated windows, defect universe).
* ``("task", ctx_id, seq, item)`` -- execute ``fn(item)``, reply with
  ``("result", ctx_id, seq, ok, value)``.  Item exceptions are captured
  and shipped back as the value, never raised out of the loop.
* ``("drop", ctx_id)`` -- the run finished; forget its context.
* ``("bye",)`` -- server shutdown; exit cleanly.

A daemon heartbeat thread pings the server every ``heartbeat_interval``
seconds so the server can distinguish "busy on a long task" from "dead".
The loop exits on any connection error -- the server requeues whatever this
worker was holding.
"""

from __future__ import annotations

import os
import threading
from typing import Optional

from ..circuit.errors import EngineError
from .protocol import (PROTOCOL_VERSION, ProtocolError, connect,
                       encode_frame, recv_frame, send_frame)

__all__ = ["run_worker"]


def run_worker(address: str,
               max_tasks: Optional[int] = None,
               crash_after: Optional[int] = None,
               heartbeat_interval: float = 1.0,
               connect_retry: float = 10.0) -> int:
    """Serve tasks from *address* until told to stop; return tasks executed.

    ``max_tasks`` bounds this process's lifetime (worker recycling);
    ``crash_after`` is a fault-injection hook for tests -- the process
    hard-exits (``os._exit``) on *receiving* task ``crash_after + 1``,
    exactly the mid-run death the server's requeue path must absorb.
    """

    if max_tasks is not None and max_tasks <= 0:
        raise EngineError("max_tasks must be positive, got %d" % max_tasks)
    sock = connect(address, retry_for=connect_retry)
    send_lock = threading.Lock()
    with send_lock:
        send_frame(sock, ("hello", {"pid": os.getpid(),
                                    "version": PROTOCOL_VERSION}))

    stop = threading.Event()

    def _heartbeat() -> None:
        while not stop.wait(heartbeat_interval):
            try:
                with send_lock:
                    send_frame(sock, ("heartbeat",))
            except OSError:
                return

    threading.Thread(target=_heartbeat, name="worker-heartbeat",
                     daemon=True).start()

    contexts = {}
    executed = 0
    try:
        while True:
            try:
                frame = recv_frame(sock)
            except (ProtocolError, OSError):
                break
            if frame is None or frame[0] == "bye":
                break
            kind = frame[0]
            if kind == "context":
                _kind, ctx_id, fn = frame
                contexts[ctx_id] = fn
            elif kind == "drop":
                contexts.pop(frame[1], None)
            elif kind == "task":
                _kind, ctx_id, seq, item = frame
                if crash_after is not None and executed >= crash_after:
                    os._exit(17)  # simulate a hard mid-run death
                fn = contexts.get(ctx_id)
                if fn is None:
                    ok, value = False, EngineError(
                        "worker received a task for unknown context %r "
                        "(context frame lost?)" % ctx_id)
                else:
                    try:
                        ok, value = True, fn(item)
                    except Exception as exc:
                        ok, value = False, exc
                executed += 1
                try:
                    payload = encode_frame(("result", ctx_id, seq, ok, value))
                except Exception as exc:
                    # The result (or exception) will not survive the trip
                    # back; report that as the item's failure instead of
                    # dying and losing the whole connection.
                    payload = encode_frame((
                        "result", ctx_id, seq, False,
                        EngineError(
                            "worker result failed to pickle: %s" % exc)))
                try:
                    with send_lock:
                        sock.sendall(payload)
                except OSError:
                    break
                if max_tasks is not None and executed >= max_tasks:
                    break
            # Unknown frame kinds are ignored: a newer server may add
            # advisory frames without breaking old workers.
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass
    return executed
