"""SQL-queryable warehouse over the engine's artifact store.

The :class:`~repro.engine.ResultCache` is a content-addressed pile of JSON
files (plus ``.npy`` sidecars): perfect for replay, useless for questions.
This package projects the completed results into one SQLite database --
one wide row per artifact, keyed by the artifact key, carrying the study
name, stage kind, task id, block path, seed material, the detection /
coverage / yield columns of the stage's payload, the per-phase task
timings and the artifact's on-disk footprint -- so "which block's coverage
moved between studies?" is a ``SELECT``, not a directory crawl.

Three entry points:

* :class:`WarehouseSink` rides the run's
  :class:`~repro.engine.TelemetryBus` and indexes the cache directory when
  ``run_finished`` fires (``--warehouse DB`` on any workload subcommand);
* :func:`index_cache` backfills a database from an existing cache
  directory offline (``repro-campaign warehouse index``);
* :mod:`~repro.warehouse.queries` holds the canned reports and the
  read-only SQL passthrough behind ``repro-campaign warehouse query/sql``.
"""

from .indexer import DRIVER_KINDS, WarehouseSink, index_cache
from .queries import CANNED_QUERIES, run_canned_query, run_sql
from .schema import SCHEMA_VERSION, ensure_schema, open_warehouse

__all__ = [
    "CANNED_QUERIES",
    "DRIVER_KINDS",
    "SCHEMA_VERSION",
    "WarehouseSink",
    "ensure_schema",
    "index_cache",
    "open_warehouse",
    "run_canned_query",
    "run_sql",
]
