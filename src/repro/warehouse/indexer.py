"""Populate the warehouse from cache artifacts (live sink or backfill).

Every completed result the engine caches is one JSON entry (plus optional
``.npy`` sidecars) whose ``spec.driver`` string names the workload that
produced it.  The indexer maps each driver to its registry stage kind
(:data:`DRIVER_KINDS` -- the same kinds whose payload codecs the stage
registry declares, see ``StageDefinition.codec``) and runs the kind's
column extractor over the stored payload.  Extraction only reads the
*scalar* summary columns, so it never loads ``.npy`` sidecars: an
externalized array shows up as its ``{"__npy__": i}`` reference and is
simply not a column.

Two feeding paths share :func:`index_cache`:

* **live**: :class:`WarehouseSink` buffers the per-task spans off the
  telemetry stream and indexes the cache directory once ``run_finished``
  fires, attaching the spans by task id (cache hits and backfilled rows
  keep NULL timings -- nothing executed);
* **offline**: ``repro-campaign warehouse index CACHE_DIR`` backfills a
  database from any existing cache directory, no run required.

Both are idempotent: rows are keyed by the artifact's content hash, so
re-indexing updates rather than duplicates -- and a re-index that has no
span for a task (warm replay, offline backfill) keeps the timings and
study name captured by the run that executed it.
"""

from __future__ import annotations

import json
import os
import sqlite3
from typing import Any, Dict, Mapping, Optional

from ..engine.telemetry import TelemetryEvent, TelemetrySink
from ..engine.trace import PHASES
from .schema import RESULT_COLUMNS, open_warehouse

#: Cache ``driver`` string -> registry stage kind.  Batched campaign
#: drivers fold into ``campaign``: a batch artifact is the same stage's
#: payload, just carrying several records.
DRIVER_KINDS: Dict[str, str] = {
    "symbist-calibration": "calibrate",
    "symbist-pipeline-windows": "windows",
    "symbist-block-windows": "windows",
    "symbist-pipeline-defect": "campaign",
    "symbist-block-defect": "campaign",
    "symbist-pipeline-defect-batch": "campaign",
    "symbist-block-defect-batch": "campaign",
    "symbist-defect-campaign": "campaign",
    "symbist-defect-batch": "campaign",
    "symbist-block-summary": "block-summary",
    "symbist-study-yield": "yield",
    "symbist-study-escape": "escape",
}


def stage_kind_of(driver: str) -> str:
    """Registry stage kind of a cache driver; unknown (third-party)
    drivers index under their own name rather than being dropped."""
    return DRIVER_KINDS.get(driver, driver)


# ------------------------------------------------------------- extraction

def _finite(value: Any) -> Optional[float]:
    return float(value) if isinstance(value, (int, float)) \
        and not isinstance(value, bool) else None


def _count(value: Any) -> Optional[int]:
    return int(value) if isinstance(value, int) \
        and not isinstance(value, bool) else None


def _block_of(spec: Mapping[str, Any]) -> Optional[str]:
    """Block path of an artifact's spec: its own ``block`` (windows /
    summary) or the nested windows spec's (per-block campaign tasks).
    Flat campaign artifacts carry no block in the spec -- their records
    name it (see :func:`_campaign_columns`)."""
    block = spec.get("block")
    if isinstance(block, str):
        return block
    windows = spec.get("windows")
    if isinstance(windows, Mapping) and isinstance(windows.get("block"), str):
        return windows["block"]
    return None


def _seeds_of(spec: Mapping[str, Any]) -> Optional[str]:
    """Seed-material token: the spec's own ``seeds``, or the nested
    windows spec's.  Calibration specs carry none -- their seed material
    is key-only by design (it never reaches the stored entry)."""
    seeds = spec.get("seeds")
    if isinstance(seeds, str):
        return seeds
    windows = spec.get("windows")
    if isinstance(windows, Mapping) and isinstance(windows.get("seeds"), str):
        return windows["seeds"]
    return None


def _spec_string(spec: Mapping[str, Any], key: str) -> Optional[str]:
    """A string annotation of an artifact's spec: its own ``key``, or the
    nested windows / calibration spec's.  Pre-refactor artifacts carry
    neither -- they stay NULL, which for ``dut_fingerprint`` reads as "the
    paper's default device" and for ``variant`` as "no variant"."""
    value = spec.get(key)
    if isinstance(value, str):
        return value
    for nested in ("windows", "calibration"):
        inner = spec.get(nested)
        if isinstance(inner, Mapping):
            value = _spec_string(inner, key)
            if value is not None:
                return value
    return None


def _dut_of(spec: Mapping[str, Any]) -> Optional[str]:
    """DutSpec fingerprint annotation (non-default devices only)."""
    return _spec_string(spec, "dut")


def _variant_of(spec: Mapping[str, Any]) -> Optional[str]:
    """Study variant label annotation (multi-variant studies only)."""
    return _spec_string(spec, "variant")


def _campaign_columns(result: Any) -> Dict[str, Any]:
    """Detection columns of one campaign artifact (single record or a
    batch's record list)."""
    records = result if isinstance(result, list) else [result]
    records = [record for record in records if isinstance(record, Mapping)]
    if not records:
        return {}
    # The records name the block themselves (``defect.block_path``); a
    # flat-campaign batch mixing blocks stays NULL.
    blocks = {record["defect"].get("block_path")
              for record in records if isinstance(record.get("defect"),
                                                  Mapping)}
    columns: Dict[str, Any] = {}
    if len(blocks) == 1 and isinstance(next(iter(blocks)), str):
        columns["block"] = next(iter(blocks))
    columns.update({
        "n_simulated": len(records),
        "n_detected": sum(1 for record in records if record.get("detected")),
        "modeled_sim_time": sum(
            _finite(record.get("modeled_sim_time")) or 0.0
            for record in records),
        "wall_time": sum(_finite(record.get("wall_time")) or 0.0
                         for record in records),
    })
    return columns


def _summary_columns(result: Any) -> Dict[str, Any]:
    if not isinstance(result, Mapping):
        return {}
    return {
        "n_defects": _count(result.get("n_defects")),
        "n_simulated": _count(result.get("n_simulated")),
        "n_detected": _count(result.get("n_detected")),
        "coverage": _finite(result.get("coverage")),
        "ci_half_width": _finite(result.get("ci_half_width")),
        "modeled_sim_time": _finite(result.get("modeled_sim_time")),
        "wall_time": _finite(result.get("wall_time")),
    }


def _yield_columns(result: Any) -> Dict[str, Any]:
    if not isinstance(result, Mapping):
        return {}
    return {
        "k": _finite(result.get("k")),
        "empirical": _finite(result.get("empirical")),
        "empirical_ci_half_width":
            _finite(result.get("empirical_ci_half_width")),
        "analytic_per_run": _finite(result.get("analytic_per_run")),
    }


def _escape_columns(result: Any) -> Dict[str, Any]:
    if not isinstance(result, Mapping):
        return {}
    return {"n_undetected": _count(result.get("n_undetected_total"))}


#: Per-stage-kind payload column extractors.  These read the shapes the
#: registry's codec declarations serialize (see ``registry.py``); kinds
#: without scalar summary columns (calibrate residual pools, windows
#: deltas) contribute identity/footprint columns only.
_EXTRACTORS = {
    "campaign": _campaign_columns,
    "block-summary": _summary_columns,
    "yield": _yield_columns,
    "escape": _escape_columns,
}


def entry_row(entry: Mapping[str, Any], cache_dir: str,
              study: Optional[str] = None,
              timings: Optional[Mapping[str, Mapping[str, float]]] = None
              ) -> Optional[Dict[str, Any]]:
    """One ``results`` row for a cache entry, or None for non-artifacts.

    Only entries with a spec carrying a ``driver`` string index -- that is
    every artifact the engine writes; anything else in the directory is
    not ours to interpret.
    """
    key = entry.get("key")
    spec = entry.get("spec")
    if not isinstance(key, str) or not isinstance(spec, Mapping):
        return None
    driver = spec.get("driver")
    if not isinstance(driver, str):
        return None
    task_id = entry.get("task_id")
    row: Dict[str, Any] = {column: None for column in RESULT_COLUMNS}
    row.update({
        "key": key,
        "study": study,
        "stage_kind": stage_kind_of(driver),
        "driver": driver,
        "task_id": task_id if isinstance(task_id, str) else None,
        "block": _block_of(spec),
        "seeds": _seeds_of(spec),
        "dut_fingerprint": _dut_of(spec),
        "variant": _variant_of(spec),
        "created": _finite(entry.get("created")),
        "sidecars": _count(entry.get("sidecars")) or 0,
    })
    extractor = _EXTRACTORS.get(row["stage_kind"])
    if extractor is not None:
        row.update(extractor(entry.get("result")))
    if timings and row["task_id"] in timings:
        span = timings[row["task_id"]]
        for phase in (*PHASES, "duration"):
            if span.get(phase) is not None:
                row[phase] = float(span[phase])
    json_path = os.path.join(cache_dir, f"{key}.json")
    try:
        row["json_bytes"] = os.stat(json_path).st_size
    except OSError:
        row["json_bytes"] = None
    sidecar_bytes = 0
    for index in range(row["sidecars"]):
        try:
            sidecar_bytes += os.stat(
                os.path.join(cache_dir, f"{key}.{index}.npy")).st_size
        except OSError:
            continue
    row["sidecar_bytes"] = sidecar_bytes
    return row


# Only the run that actually executed a task has its telemetry span, and
# only some callers know the study name -- a later re-index of the same
# artifact (warm cache replay, offline backfill) must not erase either, so
# those columns fall back to the stored value when the new row has none.
_PRESERVED = ("study", *PHASES, "duration")

_UPSERT = (
    f"INSERT INTO results ({', '.join(RESULT_COLUMNS)}) "
    f"VALUES ({', '.join('?' for _ in RESULT_COLUMNS)}) "
    "ON CONFLICT(key) DO UPDATE SET "
    + ", ".join(f"{column} = COALESCE(excluded.{column}, results.{column})"
                if column in _PRESERVED else f"{column} = excluded.{column}"
                for column in RESULT_COLUMNS if column != "key"))


def index_cache(connection: sqlite3.Connection, cache_dir: str,
                study: Optional[str] = None,
                timings: Optional[Mapping[str, Mapping[str, float]]] = None
                ) -> int:
    """Index every artifact of ``cache_dir``; returns rows written.

    Unreadable or foreign files are skipped, not fatal: the cache
    directory may legitimately hold in-flight ``.tmp`` files and torn
    artifacts of a crashed writer (the cache itself treats those as
    misses).
    """
    try:
        names = sorted(os.listdir(cache_dir))
    except OSError as exc:
        from ..circuit.errors import EngineError
        raise EngineError(
            f"cannot index cache directory {cache_dir!r}: "
            f"{exc.strerror or exc}") from exc
    written = 0
    for name in names:
        if not name.endswith(".json"):
            continue
        try:
            with open(os.path.join(cache_dir, name), "r",
                      encoding="utf-8") as handle:
                entry = json.load(handle)
        except (OSError, ValueError):
            continue
        if not isinstance(entry, Mapping):
            continue
        row = entry_row(entry, cache_dir, study=study, timings=timings)
        if row is None:
            continue
        connection.execute(_UPSERT, tuple(row[column]
                                          for column in RESULT_COLUMNS))
        written += 1
    connection.commit()
    return written


# ------------------------------------------------------------- live sink

class WarehouseSink(TelemetrySink):
    """Indexes the run's cache directory into a warehouse at the end of
    the run.

    Rides the engine's :class:`~repro.engine.TelemetryBus` next to the
    trace/progress sinks: per-task spans are buffered off
    ``task_completed`` events, and when ``run_finished`` arrives the whole
    cache directory is (re-)indexed with those spans attached by task id.
    Indexing at the end, not per event, keeps the hot path free of SQLite
    writes and makes the sink crash-safe -- a killed run simply leaves the
    warehouse at its previous state, and the next run (or an offline
    ``warehouse index``) catches it up from the artifacts.
    """

    def __init__(self, db_path: str, cache_dir: str,
                 study: Optional[str] = None) -> None:
        self.db_path = str(db_path)
        self.cache_dir = str(cache_dir)
        self.study = study
        self.rows_indexed = 0
        self._timings: Dict[str, Dict[str, float]] = {}

    def handle(self, event: TelemetryEvent) -> None:
        if event.type == "task_completed" and event.task_id is not None:
            self._timings[event.task_id] = {
                phase: event.data[phase]
                for phase in (*PHASES, "duration") if phase in event.data}
        elif event.type == "run_finished":
            connection = open_warehouse(self.db_path)
            try:
                self.rows_indexed += index_cache(
                    connection, self.cache_dir, study=self.study,
                    timings=self._timings)
            finally:
                connection.close()
            self._timings.clear()
