"""Canned reports and the SQL passthrough of the result warehouse.

Each canned query is plain SQL over the single ``results`` table (see
``schema.py``), registered under a stable name with a one-line doc; the
CLI lists them, runs them and renders the rows as a table or JSON.  The
passthrough (:func:`run_sql`) executes arbitrary SQL on a *read-only*
connection -- exploration can never corrupt the warehouse, and the cache
directory stays the source of truth either way.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from ..circuit.errors import EngineError


@dataclass(frozen=True)
class CannedQuery:
    """One named report: SQL plus the doc line the CLI shows."""

    name: str
    doc: str
    sql: str


CANNED_QUERIES: Dict[str, CannedQuery] = {}


def _register(query: CannedQuery) -> CannedQuery:
    CANNED_QUERIES[query.name] = query
    return query


_register(CannedQuery(
    name="per-block-coverage",
    doc="per-block defect coverage across studies (the Table I rows, "
        "from the block-summary artifacts)",
    sql="""
        SELECT study, block, n_defects, n_simulated, n_detected,
               n_simulated - n_detected AS n_escaped,
               coverage, ci_half_width
        FROM results
        WHERE stage_kind = 'block-summary'
        ORDER BY COALESCE(study, ''), block
    """))

_register(CannedQuery(
    name="variant-coverage",
    doc="per-variant, per-block defect coverage for multi-variant DUT "
        "sweeps (NULL variant = single-device studies)",
    sql="""
        SELECT study, variant, dut_fingerprint, block,
               n_defects, n_simulated, n_detected,
               coverage, ci_half_width
        FROM results
        WHERE stage_kind = 'block-summary'
        ORDER BY COALESCE(study, ''), COALESCE(variant, ''), block
    """))

_register(CannedQuery(
    name="slowest-stages",
    doc="stage kinds by total executed task time, with each kind's five "
        "slowest tasks (needs timings, i.e. rows indexed live via "
        "--warehouse)",
    sql="""
        SELECT stage_kind, stage_seconds, task_rank, task_id, block,
               duration
        FROM (
            SELECT stage_kind, task_id, block, duration,
                   SUM(duration) OVER (PARTITION BY stage_kind)
                       AS stage_seconds,
                   RANK() OVER (PARTITION BY stage_kind
                                ORDER BY duration DESC) AS task_rank
            FROM results
            WHERE duration IS NOT NULL
        )
        WHERE task_rank <= 5
        ORDER BY stage_seconds DESC, stage_kind, task_rank
    """))

_register(CannedQuery(
    name="cache-composition",
    doc="artifact count and on-disk footprint (JSON + .npy sidecars) per "
        "stage kind",
    sql="""
        SELECT stage_kind,
               COUNT(*) AS artifacts,
               SUM(COALESCE(json_bytes, 0)) AS json_bytes,
               SUM(COALESCE(sidecar_bytes, 0)) AS sidecar_bytes,
               SUM(COALESCE(sidecars, 0)) AS sidecar_files,
               SUM(COALESCE(json_bytes, 0) + COALESCE(sidecar_bytes, 0))
                   AS total_bytes
        FROM results
        GROUP BY stage_kind
        ORDER BY total_bytes DESC, stage_kind
    """))


def run_canned_query(connection: sqlite3.Connection, name: str
                     ) -> Tuple[List[str], List[Tuple[Any, ...]]]:
    """Run one canned report; returns ``(column names, rows)``."""
    try:
        query = CANNED_QUERIES[name]
    except KeyError:
        available = ", ".join(sorted(CANNED_QUERIES))
        raise EngineError(
            f"unknown warehouse report {name!r}; available reports: "
            f"{available}") from None
    return run_sql(connection, query.sql)


def run_sql(connection: sqlite3.Connection, sql: str
            ) -> Tuple[List[str], List[Tuple[Any, ...]]]:
    """Execute one SQL statement; returns ``(column names, rows)``.

    SQL errors surface as :class:`~repro.circuit.errors.EngineError` with
    SQLite's message -- the passthrough is a user surface, not an
    internal one.
    """
    try:
        cursor = connection.execute(sql)
        rows = cursor.fetchall()
    except sqlite3.Error as exc:
        raise EngineError(f"warehouse query failed: {exc}") from exc
    headers = [column[0] for column in cursor.description or []]
    return headers, rows
