"""SQLite schema of the result warehouse.

One wide ``results`` table, one row per cache artifact, keyed by the
artifact key (the content hash, so re-indexing the same cache is
idempotent -- ``INSERT OR REPLACE`` by primary key).  Columns that a stage
kind does not produce are simply NULL: a calibrate row has no coverage, a
yield row has no block.  That keeps every canned report a single-table
query and lets ad-hoc SQL join nothing.

Column groups
-------------
identity
    ``key`` (artifact hash), ``study``, ``stage_kind`` (registry kind:
    calibrate / windows / campaign / block-summary / yield / escape),
    ``driver`` (the spec's cache driver string), ``task_id``, ``block``,
    ``seeds`` (the per-task seed-material token recorded in the spec),
    ``dut_fingerprint`` (the :class:`~repro.dut.DutSpec` content hash the
    task ran against; NULL for pre-DUT-refactor artifacts, which all ran
    the paper's default device), ``variant`` (the study variant label;
    NULL outside multi-variant studies), ``created`` (artifact creation
    time, epoch seconds).
detection / coverage (campaign + block-summary rows)
    ``n_defects``, ``n_simulated``, ``n_detected``, ``coverage``,
    ``ci_half_width``.
yield (yield rows)
    ``k``, ``empirical``, ``empirical_ci_half_width``, ``analytic_per_run``.
escape (escape rows)
    ``n_undetected``.
timings
    ``modeled_sim_time`` and ``wall_time`` from the stored payload;
    ``queue_wait`` / ``deserialize`` / ``execute`` / ``ship`` /
    ``duration`` from the run's telemetry (NULL for backfilled or cached
    rows -- only an executed task has a span).
footprint
    ``json_bytes``, ``sidecar_bytes``, ``sidecars`` (the ``.npy`` count).
"""

from __future__ import annotations

import os
import sqlite3

from ..circuit.errors import EngineError

#: Bumped on any incompatible change to the DDL below; a database written
#: by a different version is rejected with an actionable error (re-index
#: from the cache directory, which remains the source of truth).
#: History: 1 = initial schema; 2 = added ``dut_fingerprint`` / ``variant``
#: (parametric DUT sweeps).
SCHEMA_VERSION = 2

RESULTS_DDL = """
CREATE TABLE IF NOT EXISTS results (
    key                     TEXT PRIMARY KEY,
    study                   TEXT,
    stage_kind              TEXT NOT NULL,
    driver                  TEXT NOT NULL,
    task_id                 TEXT,
    block                   TEXT,
    seeds                   TEXT,
    dut_fingerprint         TEXT,
    variant                 TEXT,
    created                 REAL,
    n_defects               INTEGER,
    n_simulated             INTEGER,
    n_detected              INTEGER,
    coverage                REAL,
    ci_half_width           REAL,
    k                       REAL,
    empirical               REAL,
    empirical_ci_half_width REAL,
    analytic_per_run        REAL,
    n_undetected            INTEGER,
    modeled_sim_time        REAL,
    wall_time               REAL,
    queue_wait              REAL,
    deserialize             REAL,
    execute                 REAL,
    ship                    REAL,
    duration                REAL,
    json_bytes              INTEGER,
    sidecar_bytes           INTEGER,
    sidecars                INTEGER
);
CREATE INDEX IF NOT EXISTS ix_results_stage_kind ON results (stage_kind);
CREATE INDEX IF NOT EXISTS ix_results_block ON results (block);
CREATE INDEX IF NOT EXISTS ix_results_study ON results (study);
CREATE INDEX IF NOT EXISTS ix_results_variant ON results (variant);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

#: Insertable columns of ``results``, in DDL order (the indexer builds its
#: rows against this list so schema and extractor cannot drift apart).
RESULT_COLUMNS = (
    "key", "study", "stage_kind", "driver", "task_id", "block", "seeds",
    "dut_fingerprint", "variant",
    "created", "n_defects", "n_simulated", "n_detected", "coverage",
    "ci_half_width", "k", "empirical", "empirical_ci_half_width",
    "analytic_per_run", "n_undetected", "modeled_sim_time", "wall_time",
    "queue_wait", "deserialize", "execute", "ship", "duration",
    "json_bytes", "sidecar_bytes", "sidecars")


def open_warehouse(path: str, readonly: bool = False) -> sqlite3.Connection:
    """Open (and, unless readonly, create/migrate-check) a warehouse.

    ``readonly=True`` opens through a ``mode=ro`` URI, so the query surface
    -- including the raw SQL passthrough -- physically cannot mutate the
    database; a missing file is an error rather than an implicit empty
    warehouse.
    """
    if not path:
        raise EngineError("warehouse path must be a non-empty path")
    if readonly:
        if not os.path.exists(path):
            raise EngineError(
                f"warehouse {path!r} does not exist; build it with "
                f"`repro-campaign warehouse index` or --warehouse")
        uri = f"file:{path}?mode=ro"
        connection = sqlite3.connect(uri, uri=True)
        _check_version(connection, path)
        return connection
    connection = sqlite3.connect(path)
    ensure_schema(connection)
    _check_version(connection, path)
    return connection


def ensure_schema(connection: sqlite3.Connection) -> None:
    """Create the tables/indexes when absent; stamp the schema version."""
    connection.executescript(RESULTS_DDL)
    connection.execute(
        "INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
        ("schema_version", str(SCHEMA_VERSION)))
    connection.commit()


def _check_version(connection: sqlite3.Connection, path: str) -> None:
    try:
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'").fetchone()
    except sqlite3.Error as exc:
        raise EngineError(
            f"{path!r} is not a result warehouse: {exc}") from exc
    version = row[0] if row else None
    if version != str(SCHEMA_VERSION):
        raise EngineError(
            f"warehouse {path!r} has schema version {version}, this build "
            f"expects {SCHEMA_VERSION}; re-index it from the cache "
            f"directory (the artifacts are the source of truth)")
