"""Tests for the bandgap block (repro.adc.bandgap)."""

import numpy as np
import pytest

from repro.adc import Bandgap
from repro.circuit import VDD


class TestNominalBehaviour:
    def test_nominal_voltage_close_to_target(self):
        out = Bandgap().evaluate()
        assert out.vbg == pytest.approx(Bandgap.VBG_NOMINAL, abs=0.01)

    def test_nominal_bias_current(self):
        out = Bandgap().evaluate()
        assert out.ibias == pytest.approx(Bandgap.IBIAS_NOMINAL, rel=0.05)

    def test_observables_exported(self):
        obs = Bandgap().observables()
        assert set(obs) == {"VBG", "IBIAS"}

    def test_evaluation_is_repeatable(self):
        bg = Bandgap()
        assert bg.evaluate().vbg == bg.evaluate().vbg


class TestProcessVariation:
    def test_variation_moves_output_slightly(self):
        rng = np.random.default_rng(5)
        values = []
        for _ in range(30):
            bg = Bandgap()
            bg.sample_variation(rng)
            values.append(bg.evaluate().vbg)
        spread = max(values) - min(values)
        assert 0.0 < spread < 0.08  # millivolt-level spread, not a collapse

    def test_reset_variation_restores_nominal(self):
        bg = Bandgap()
        bg.sample_variation(np.random.default_rng(1))
        bg.reset_variation()
        from repro.circuit import reset_variation
        reset_variation(bg.netlist)
        assert bg.evaluate().vbg == pytest.approx(Bandgap().evaluate().vbg,
                                                  abs=1e-9)


class TestDefectResponse:
    def test_ptat_resistor_low_shifts_voltage_up(self):
        bg = Bandgap()
        bg.netlist.device("r1").defect.value_scale = 0.5
        assert bg.evaluate().vbg > Bandgap.VBG_NOMINAL + 0.05

    def test_gain_resistor_low_shifts_voltage_down(self):
        bg = Bandgap()
        bg.netlist.device("r2").defect.value_scale = 0.5
        assert bg.evaluate().vbg < Bandgap.VBG_NOMINAL - 0.1

    def test_gain_resistor_open_rails_output(self):
        bg = Bandgap()
        bg.netlist.device("r2").defect.open_terminal = "p"
        assert bg.evaluate().vbg == pytest.approx(VDD, abs=0.1)

    def test_bias_resistor_open_kills_bias_current(self):
        bg = Bandgap()
        bg.netlist.device("r3").defect.open_terminal = "p"
        assert bg.evaluate().ibias == 0.0

    def test_bias_resistor_short_overdrives_current(self):
        bg = Bandgap()
        bg.netlist.device("r3").defect.shorted_terminals = ("p", "n")
        assert bg.evaluate().ibias > 2 * Bandgap.IBIAS_NOMINAL

    def test_bipolar_ce_short_collapses_core(self):
        bg = Bandgap()
        bg.netlist.device("q1").defect.shorted_terminals = ("c", "e")
        assert bg.evaluate().vbg < 0.2

    def test_unit_bipolar_be_short_removes_vbe(self):
        bg = Bandgap()
        bg.netlist.device("q1").defect.shorted_terminals = ("b", "e")
        assert bg.evaluate().vbg < Bandgap.VBG_NOMINAL - 0.3

    def test_tail_open_rails_output(self):
        bg = Bandgap()
        bg.netlist.device("mn_tail").defect.open_terminal = "d"
        out = bg.evaluate()
        assert out.vbg == pytest.approx(VDD, abs=0.15) or out.vbg < 0.2

    def test_mirror_stuck_off_kills_distributed_bias(self):
        bg = Bandgap()
        bg.netlist.device("mp_mirror").defect.open_terminal = "d"
        assert bg.evaluate().ibias == 0.0

    def test_clear_defects_restores_nominal(self):
        bg = Bandgap()
        bg.netlist.device("r1").defect.value_scale = 1.5
        bg.clear_defects()
        assert bg.evaluate().vbg == pytest.approx(Bandgap.VBG_NOMINAL, abs=0.01)

    def test_defect_count_matches_structure(self):
        bg = Bandgap()
        summary = bg.netlist.summary()
        assert summary["pnp"] == 2
        assert summary["resistor"] == 3
        assert summary["nmos"] + summary["pmos"] == 8
