"""Tests for the defect-to-behaviour mapping helpers (repro.adc.behavioral)."""

import pytest

from repro.adc import (MosState, PassiveState, StageEffect, combine_effects,
                       diff_stage_effect, effective_capacitance,
                       effective_resistance, mos_state, passive_state,
                       switch_state)
from repro.circuit import (DefectError, PullDirection, capacitor, nmos, pmos,
                           resistor, switch, VDD)


class TestMosState:
    def test_clean_device_is_normal(self):
        assert mos_state(nmos("m", "d", "g", "s")) is MosState.NORMAL

    def test_drain_source_short_is_stuck_on(self):
        dev = nmos("m", "d", "g", "s")
        dev.defect.shorted_terminals = ("d", "s")
        assert mos_state(dev) is MosState.STUCK_ON

    def test_gate_source_short_is_stuck_off(self):
        dev = pmos("m", "d", "g", "s")
        dev.defect.shorted_terminals = ("g", "s")
        assert mos_state(dev) is MosState.STUCK_OFF

    def test_gate_drain_short_is_degraded(self):
        dev = nmos("m", "d", "g", "s")
        dev.defect.shorted_terminals = ("g", "d")
        assert mos_state(dev) is MosState.DEGRADED

    def test_drain_open_is_stuck_off(self):
        dev = nmos("m", "d", "g", "s")
        dev.defect.open_terminal = "d"
        assert mos_state(dev) is MosState.STUCK_OFF

    def test_gate_open_follows_pull_direction(self):
        dev = nmos("m", "d", "g", "s")
        dev.defect.open_terminal = "g"
        dev.defect.open_pull = PullDirection.UP
        assert mos_state(dev) is MosState.STUCK_ON
        dev.defect.open_pull = PullDirection.DOWN
        assert mos_state(dev) is MosState.STUCK_OFF

    def test_pmos_gate_open_pull_up_is_stuck_off(self):
        dev = pmos("m", "d", "g", "s")
        dev.defect.open_terminal = "g"
        dev.defect.open_pull = PullDirection.UP
        assert mos_state(dev) is MosState.STUCK_OFF

    def test_bulk_open_is_degraded(self):
        dev = nmos("m", "d", "g", "s")
        dev.defect.open_terminal = "b"
        assert mos_state(dev) is MosState.DEGRADED

    def test_wrong_device_kind_rejected(self):
        with pytest.raises(DefectError):
            mos_state(resistor("r", "a", "b", 1.0))


class TestSwitchState:
    def test_clean_switch_follows_control(self):
        dev = switch("s", "a", "b", "en")
        assert switch_state(dev, nominal_on=True) is True
        assert switch_state(dev, nominal_on=False) is False

    def test_terminal_short_always_on(self):
        dev = switch("s", "a", "b", "en")
        dev.defect.shorted_terminals = ("p", "n")
        assert switch_state(dev, nominal_on=False) is True

    def test_terminal_open_always_off(self):
        dev = switch("s", "a", "b", "en")
        dev.defect.open_terminal = "n"
        assert switch_state(dev, nominal_on=True) is False

    def test_control_short_treated_as_on(self):
        dev = switch("s", "a", "b", "en")
        dev.defect.shorted_terminals = ("p", "ctrl")
        assert switch_state(dev, nominal_on=False) is True

    def test_control_open_without_pull_is_off(self):
        dev = switch("s", "a", "b", "en")
        dev.defect.open_terminal = "ctrl"
        assert switch_state(dev, nominal_on=True) is False

    def test_mos_used_as_switch(self):
        dev = nmos("m", "d", "g", "s")
        dev.defect.shorted_terminals = ("d", "s")
        assert switch_state(dev, nominal_on=False) is True

    def test_wrong_kind_rejected(self):
        with pytest.raises(DefectError):
            switch_state(capacitor("c", "a", "b", 1e-12), True)


class TestPassiveState:
    def test_clean_value(self):
        state, value = passive_state(resistor("r", "a", "b", 100.0))
        assert state is PassiveState.VALUE
        assert value == pytest.approx(100.0)

    def test_deviation_scales_value(self):
        dev = resistor("r", "a", "b", 100.0)
        dev.defect.value_scale = 0.5
        assert passive_state(dev)[1] == pytest.approx(50.0)

    def test_short_and_open(self):
        dev = capacitor("c", "a", "b", 1e-12)
        dev.defect.shorted_terminals = ("p", "n")
        assert passive_state(dev)[0] is PassiveState.SHORTED
        dev.clear_defect()
        dev.defect.open_terminal = "p"
        assert passive_state(dev)[0] is PassiveState.OPEN

    def test_effective_resistance_of_short(self):
        dev = resistor("r", "a", "b", 1e6)
        dev.defect.shorted_terminals = ("p", "n")
        assert effective_resistance(dev) == pytest.approx(10.0)

    def test_effective_capacitance_of_open_is_zero(self):
        dev = capacitor("c", "a", "b", 1e-12)
        dev.defect.open_terminal = "n"
        value, shorted = effective_capacitance(dev)
        assert value == 0.0 and shorted is False

    def test_effective_capacitance_of_short_flags_plates(self):
        dev = capacitor("c", "a", "b", 1e-12)
        dev.defect.shorted_terminals = ("p", "n")
        _, shorted = effective_capacitance(dev)
        assert shorted is True

    def test_wrong_kind_rejected(self):
        with pytest.raises(DefectError):
            passive_state(nmos("m", "d", "g", "s"))


class TestStageEffect:
    def test_nominal_effect_is_identity(self):
        assert StageEffect().is_nominal

    def test_combine_multiplies_gains_and_adds_offsets(self):
        total = StageEffect(gain_scale=0.5, offset=0.1).combine(
            StageEffect(gain_scale=0.5, offset=0.2))
        assert total.gain_scale == pytest.approx(0.25)
        assert total.offset == pytest.approx(0.3)

    def test_combine_keeps_latest_stuck_value(self):
        total = StageEffect(stuck_positive=0.1).combine(
            StageEffect(stuck_positive=0.9))
        assert total.stuck_positive == pytest.approx(0.9)

    def test_combine_effects_helper(self):
        total = combine_effects([StageEffect(gain_scale=0.5),
                                 StageEffect(cm_shift=0.1)])
        assert total.gain_scale == pytest.approx(0.5)
        assert total.cm_shift == pytest.approx(0.1)


class TestDiffStageEffect:
    def test_unknown_role_rejected(self):
        with pytest.raises(DefectError):
            diff_stage_effect("driver", nmos("m", "d", "g", "s"))

    def test_clean_device_has_no_effect(self):
        effect = diff_stage_effect("tail", nmos("m", "d", "g", "s"))
        assert effect.is_nominal

    def test_tail_stuck_off_rails_both_outputs(self):
        dev = nmos("m", "d", "g", "s")
        dev.defect.open_terminal = "d"
        effect = diff_stage_effect("tail", dev)
        assert effect.stuck_positive == pytest.approx(VDD)
        assert effect.stuck_negative == pytest.approx(VDD)
        assert effect.bias_scale == 0.0

    def test_input_stuck_off_rails_its_output(self):
        dev = nmos("m", "d", "g", "s")
        dev.defect.open_terminal = "s"
        effect = diff_stage_effect("input_pos", dev)
        assert effect.stuck_positive == pytest.approx(VDD)
        assert effect.stuck_negative is None

    def test_input_drain_bulk_short_pins_output_low(self):
        dev = nmos("m", "d", "g", "s")
        dev.defect.shorted_terminals = ("d", "b")
        effect = diff_stage_effect("input_neg", dev)
        assert effect.stuck_negative == pytest.approx(0.0)

    def test_source_bulk_short_on_load_is_benign(self):
        dev = pmos("m", "d", "g", "s")
        dev.defect.shorted_terminals = ("s", "b")
        assert diff_stage_effect("load_pos", dev).is_nominal

    def test_severity_scales_offsets(self):
        dev = nmos("m", "d", "g", "s")
        dev.defect.shorted_terminals = ("d", "s")
        weak = diff_stage_effect("input_pos", dev, severity=0.5)
        strong = diff_stage_effect("input_pos", dev, severity=1.0)
        assert abs(strong.offset) > abs(weak.offset)
