"""Tests for the comparator chain (repro.adc.comparator)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc import (Bandgap, Comparator, ComparatorLatch, OffsetCompensation,
                       Preamplifier, RsLatch)
from repro.adc.comparator import LatchOutput
from repro.circuit import VCM2_NOMINAL, VDD

IBIAS = Bandgap.IBIAS_NOMINAL


class TestPreamplifier:
    def test_common_mode_invariance_defect_free(self):
        """Paper Eq. (4): LIN+ + LIN- = 2*Vcm2 regardless of the input."""
        pre = Preamplifier()
        comp = OffsetCompensation()
        for diff in (-0.5, -0.1, 0.0, 0.05, 0.3):
            out = pre.evaluate(0.6 + diff / 2, 0.6 - diff / 2, IBIAS, comp)
            assert out.lin_p + out.lin_m == pytest.approx(2 * VCM2_NOMINAL,
                                                          abs=1e-6)

    def test_polarity_follows_input(self):
        pre = Preamplifier()
        comp = OffsetCompensation()
        pos = pre.evaluate(0.7, 0.5, IBIAS, comp)
        neg = pre.evaluate(0.5, 0.7, IBIAS, comp)
        assert pos.differential > 0 > neg.differential

    def test_output_saturates_softly(self):
        pre = Preamplifier()
        comp = OffsetCompensation()
        out = pre.evaluate(1.1, 0.1, IBIAS, comp)
        assert out.differential <= 2 * Preamplifier.SWING_LIMIT + 1e-9

    def test_no_bias_current_rails_common_mode(self):
        pre = Preamplifier()
        comp = OffsetCompensation()
        out = pre.evaluate(0.65, 0.55, 0.0, comp)
        assert out.common_mode == pytest.approx(VDD, abs=0.05)

    def test_load_short_sticks_output_high(self):
        pre = Preamplifier()
        pre.netlist.device("r_load_p").defect.shorted_terminals = ("p", "n")
        out = pre.evaluate(0.6, 0.6, IBIAS, OffsetCompensation())
        assert out.lin_p == pytest.approx(VDD, abs=1e-6)

    def test_input_device_open_breaks_common_mode(self):
        pre = Preamplifier()
        pre.netlist.device("mn_in_p").defect.open_terminal = "d"
        out = pre.evaluate(0.6, 0.6, IBIAS, OffsetCompensation())
        assert abs(out.lin_p + out.lin_m - 2 * VCM2_NOMINAL) > 0.1

    @given(st.floats(min_value=-0.6, max_value=0.6))
    @settings(max_examples=40, deadline=None)
    def test_common_mode_property(self, diff):
        out = Preamplifier().evaluate(0.6 + diff / 2, 0.6 - diff / 2, IBIAS,
                                      OffsetCompensation())
        assert out.lin_p + out.lin_m == pytest.approx(2 * VCM2_NOMINAL, abs=1e-6)


class TestOffsetCompensation:
    def test_nominal_compensation_factor(self):
        factor, offset, stuck = OffsetCompensation().evaluate()
        assert factor == pytest.approx(OffsetCompensation.COMPENSATION_FACTOR)
        assert offset == pytest.approx(0.0, abs=1e-3)
        assert stuck is None

    def test_open_capacitor_disables_compensation(self):
        oc = OffsetCompensation()
        oc.netlist.device("c_az_p").defect.open_terminal = "p"
        factor, _, _ = oc.evaluate()
        assert factor == 0.0

    def test_shorted_capacitor_pins_one_output(self):
        oc = OffsetCompensation()
        oc.netlist.device("c_az_n").defect.shorted_terminals = ("p", "n")
        _, _, stuck = oc.evaluate()
        assert stuck == "n"

    def test_leaky_switch_injects_offset(self):
        oc = OffsetCompensation()
        oc.netlist.device("sw_az_p").defect.shorted_terminals = ("p", "n")
        _, offset, _ = oc.evaluate()
        assert abs(offset) > 0.05

    def test_benign_cap_deviation_only_reduces_factor(self):
        oc = OffsetCompensation()
        oc.netlist.device("c_az_p").defect.value_scale = 1.5
        factor, offset, stuck = oc.evaluate()
        assert 0.5 < factor < OffsetCompensation.COMPENSATION_FACTOR + 1e-9
        assert stuck is None


class TestComparatorLatch:
    def test_resolves_to_complementary_rails(self):
        latch = ComparatorLatch()
        high = latch.evaluate(0.8, 0.3)
        low = latch.evaluate(0.3, 0.8)
        assert (high.q_p, high.q_m) == (VDD, 0.0)
        assert (low.q_p, low.q_m) == (0.0, VDD)

    def test_clock_device_open_leaves_both_precharged(self):
        latch = ComparatorLatch()
        latch.netlist.device("mn_clk").defect.open_terminal = "d"
        out = latch.evaluate(0.8, 0.3)
        assert out.q_p == out.q_m == VDD

    def test_cross_device_stuck_on_forces_output_low(self):
        latch = ComparatorLatch()
        latch.netlist.device("mn_cross_p").defect.shorted_terminals = ("d", "s")
        out = latch.evaluate(0.8, 0.3)  # should have resolved high
        assert out.q_p == pytest.approx(0.0)

    def test_weak_level_from_stuck_off_pullup(self):
        latch = ComparatorLatch()
        latch.netlist.device("mp_cross_p").defect.open_terminal = "d"
        out = latch.evaluate(0.8, 0.3)
        assert 0.0 < out.q_p < VDD


class TestRsLatch:
    def test_set_and_reset(self):
        rs = RsLatch()
        set_out = rs.evaluate(LatchOutput(q_p=VDD, q_m=0.0))
        assert set_out.decision == 1
        reset_out = rs.evaluate(LatchOutput(q_p=0.0, q_m=VDD))
        assert reset_out.decision == 0

    def test_holds_previous_state_on_invalid_low_low(self):
        rs = RsLatch()
        rs.evaluate(LatchOutput(q_p=VDD, q_m=0.0))
        held = rs.evaluate(LatchOutput(q_p=0.0, q_m=0.0))
        assert held.decision == 1

    def test_both_high_drives_both_outputs_high(self):
        rs = RsLatch()
        out = rs.evaluate(LatchOutput(q_p=VDD, q_m=VDD))
        assert out.q_p == VDD and out.q_m == VDD

    def test_weak_input_level_propagates(self):
        rs = RsLatch()
        out = rs.evaluate(LatchOutput(q_p=0.6, q_m=VDD))
        assert 0.0 < out.q_p < VDD

    def test_output_pullup_short_sticks_high(self):
        rs = RsLatch()
        rs.netlist.device("mp_nand_a").defect.shorted_terminals = ("d", "s")
        out = rs.evaluate(LatchOutput(q_p=0.0, q_m=VDD))
        assert out.q_p == pytest.approx(VDD)

    def test_bulk_defect_is_benign(self):
        rs = RsLatch()
        rs.netlist.device("mn_nand_a").defect.shorted_terminals = ("s", "b")
        out = rs.evaluate(LatchOutput(q_p=VDD, q_m=0.0))
        assert (out.q_p, out.q_m) == (VDD, 0.0)

    def test_reset_state_clears_memory(self):
        rs = RsLatch()
        rs.evaluate(LatchOutput(q_p=VDD, q_m=0.0))
        rs.reset_state()
        held = rs.evaluate(LatchOutput(q_p=0.0, q_m=0.0))
        assert held.decision == 0


class TestComparatorChain:
    def test_full_chain_decision_and_invariances(self):
        comp = Comparator()
        out = comp.evaluate(0.65, 0.55, IBIAS)
        assert out.decision == 1
        assert out.q_p + out.q_m == pytest.approx(VDD, abs=1e-9)
        assert out.lin_p + out.lin_m == pytest.approx(2 * VCM2_NOMINAL, abs=1e-6)

    def test_sign_consistency_defect_free(self):
        comp = Comparator()
        for diff in (-0.3, -0.05, 0.05, 0.3):
            out = comp.evaluate(0.6 + diff, 0.6, IBIAS)
            lin_sign = out.lin_p > out.lin_m
            q_sign = out.q_p > out.q_m
            assert lin_sign == q_sign

    def test_blocks_enumeration(self):
        comp = Comparator()
        names = [type(b).__name__ for b in comp.blocks]
        assert names == ["Preamplifier", "ComparatorLatch", "RsLatch",
                         "OffsetCompensation"]

    def test_clear_defects_cascades(self):
        comp = Comparator()
        comp.preamplifier.netlist.device("mn_tail").defect.open_terminal = "d"
        comp.clear_defects()
        assert not any(b.has_defect for b in comp.blocks)
