"""Tests for the reference buffer / VREF ladder (repro.adc.reference_buffer)."""

import numpy as np
import pytest

from repro.adc import Bandgap, ReferenceBuffer
from repro.circuit import N_REF_LEVELS, VDD

VBG = Bandgap.VBG_NOMINAL


class TestNominalLadder:
    def test_returns_33_levels(self):
        vref = ReferenceBuffer().evaluate(VBG)
        assert len(vref) == N_REF_LEVELS

    def test_levels_monotonic(self):
        vref = ReferenceBuffer().evaluate(VBG)
        assert all(b > a for a, b in zip(vref, vref[1:]))

    def test_bottom_is_ground(self):
        vref = ReferenceBuffer().evaluate(VBG)
        assert vref[0] == pytest.approx(0.0, abs=1e-9)

    def test_top_close_to_bandgap_voltage(self):
        vref = ReferenceBuffer().evaluate(VBG)
        assert vref[32] == pytest.approx(VBG, rel=0.01)

    def test_ladder_is_linear(self):
        vref = ReferenceBuffer().evaluate(VBG)
        for j in range(N_REF_LEVELS):
            assert vref[j] == pytest.approx(j / 32 * vref[32], abs=1e-6)

    def test_complementary_taps_sum_to_full_scale(self):
        """The ratiometric symmetry behind the Eq. (2) invariances."""
        vref = ReferenceBuffer().evaluate(VBG)
        for j in range(N_REF_LEVELS):
            assert vref[j] + vref[32 - j] == pytest.approx(vref[32], abs=1e-9)

    def test_scales_with_bandgap_voltage(self):
        buf = ReferenceBuffer()
        nominal = buf.evaluate(VBG)
        scaled = buf.evaluate(VBG * 0.9)
        assert scaled[32] == pytest.approx(0.9 * nominal[32], rel=0.01)

    def test_observables(self):
        obs = ReferenceBuffer().observables(VBG)
        assert set(obs) == {"VREF0", "VREF16", "VREF32"}


class TestLadderDefects:
    def test_segment_short_breaks_complementary_symmetry(self):
        buf = ReferenceBuffer()
        buf.netlist.device("rlad_10").defect.shorted_terminals = ("p", "n")
        vref = buf.evaluate(VBG)
        worst = max(abs(vref[j] + vref[32 - j] - vref[32])
                    for j in range(N_REF_LEVELS))
        assert worst > 0.01

    def test_segment_open_collapses_lower_taps(self):
        buf = ReferenceBuffer()
        buf.netlist.device("rlad_16").defect.open_terminal = "p"
        vref = buf.evaluate(VBG)
        # Below the break the ladder is pulled towards ground through the
        # remaining segments; above the break it floats towards the buffer.
        assert vref[8] < 0.05
        assert vref[24] > 0.9 * vref[32]

    def test_segment_deviation_shifts_local_taps(self):
        buf = ReferenceBuffer()
        buf.netlist.device("rlad_05").defect.value_scale = 1.5
        vref = buf.evaluate(VBG)
        nominal = ReferenceBuffer().evaluate(VBG)
        assert vref[5] != pytest.approx(nominal[5], abs=1e-4)

    def test_ladder_defect_leaves_endpoints_pinned(self):
        buf = ReferenceBuffer()
        buf.netlist.device("rlad_20").defect.value_scale = 0.5
        vref = buf.evaluate(VBG)
        assert vref[0] == pytest.approx(0.0, abs=1e-9)


class TestBufferDefects:
    def test_buffer_defect_scales_ladder_uniformly(self):
        """The key property behind the low L-W coverage of this block: a
        buffer defect rescales every tap together, so the ratiometric
        invariances cannot see it."""
        buf = ReferenceBuffer()
        buf.netlist.device("mn_tail").defect.open_terminal = "d"
        vref = buf.evaluate(VBG)
        full_scale = vref[32]
        for j in range(N_REF_LEVELS):
            assert vref[j] + vref[32 - j] == pytest.approx(full_scale, abs=1e-6)

    def test_decoupling_cap_short_grounds_reference(self):
        buf = ReferenceBuffer()
        buf.netlist.device("c_comp").defect.shorted_terminals = ("p", "n")
        vref = buf.evaluate(VBG)
        assert vref[32] == pytest.approx(0.0, abs=1e-6)

    def test_feedback_open_rails_reference(self):
        buf = ReferenceBuffer()
        buf.netlist.device("r_fb").defect.open_terminal = "p"
        vref = buf.evaluate(VBG)
        assert vref[32] == pytest.approx(VDD, rel=0.05)

    def test_output_resistor_open_discharges_ladder(self):
        buf = ReferenceBuffer()
        buf.netlist.device("r_out").defect.open_terminal = "p"
        vref = buf.evaluate(VBG)
        assert vref[32] < 0.1 * VBG
