"""Tests for the top-level SAR ADC IP model (repro.adc.sar_adc)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc import DEFAULT_TEST_INPUT_DIFF, SarAdc, TenBitDac, split_code
from repro.circuit import SimulationError, VCM_NOMINAL, VDD


class TestStructure:
    def test_table1_block_order(self, adc):
        paths = [blk.block_path for blk in adc.analog_blocks]
        assert paths == ["bandgap", "reference_buffer", "subdac1", "subdac2",
                         "sc_array", "vcm_generator", "preamplifier",
                         "comparator_latch", "rs_latch", "offset_compensation"]

    def test_block_lookup(self, adc):
        assert adc.block("sc_array").block_path == "sc_array"
        with pytest.raises(SimulationError):
            adc.block("unknown_block")

    def test_hierarchy_registers_all_blocks(self, adc):
        hierarchy = adc.build_hierarchy()
        assert len(hierarchy) == 10
        assert hierarchy.device_count() == sum(len(b.netlist)
                                               for b in adc.analog_blocks)

    def test_split_code(self):
        assert split_code(0) == (0, 0)
        assert split_code(1023) == (31, 31)
        assert split_code(32 * 7 + 5) == (7, 5)
        with pytest.raises(SimulationError):
            split_code(1024)

    def test_dac_blocks_property(self):
        dac = TenBitDac()
        assert len(dac.blocks) == 3


class TestOperatingPoint:
    def test_nominal_operating_point(self, adc):
        op = adc.operating_point()
        assert op.vbg == pytest.approx(1.2, abs=0.01)
        assert op.vref_full_scale == pytest.approx(1.2, abs=0.01)
        assert len(op.vref) == 33
        assert op.in_p - op.in_m == pytest.approx(DEFAULT_TEST_INPUT_DIFF)

    def test_input_common_mode_default(self, adc):
        op = adc.operating_point(input_diff=0.2)
        assert 0.5 * (op.in_p + op.in_m) == pytest.approx(VCM_NOMINAL)


class TestSymBistMode:
    def test_signals_present(self, adc):
        signals = adc.evaluate_test_cycle(5)
        for name in ("M+", "M-", "L+", "L-", "DAC+", "DAC-", "LIN+", "LIN-",
                     "Q+", "Q-", "QL+", "QL-", "VCM", "VREF32", "VREF16",
                     "VBG", "IBIAS", "IN+", "IN-", "VDD"):
            assert name in signals

    def test_invalid_counter_code_rejected(self, adc):
        with pytest.raises(SimulationError):
            adc.evaluate_test_cycle(32)

    def test_invariances_hold_at_every_code(self, adc):
        op = adc.operating_point()
        for code in range(32):
            s = adc.evaluate_test_cycle(code, op)
            assert s["M+"] + s["M-"] == pytest.approx(s["VREF32"], abs=1e-6)
            assert s["L+"] + s["L-"] == pytest.approx(s["VREF32"], abs=1e-6)
            # The DAC common mode tracks the generated Vcm up to the tiny
            # difference between the externally applied input common mode and
            # the on-chip Vcm (well inside the comparison window).
            assert s["DAC+"] + s["DAC-"] == pytest.approx(2 * s["VCM"], abs=1e-3)
            assert s["Q+"] + s["Q-"] == pytest.approx(VDD, abs=1e-9)

    def test_both_subdacs_get_same_code(self, adc):
        op = adc.operating_point()
        s = adc.evaluate_test_cycle(9, op)
        assert s["M+"] == pytest.approx(op.vref[9], abs=1e-3)
        assert s["L+"] == pytest.approx(op.vref[9], abs=1e-3)


class TestConversion:
    def test_zero_input_gives_mid_code(self, adc):
        assert adc.convert(0.0) == 528

    def test_known_input_levels(self, adc):
        # code = 528 + input / (VFS/528)
        assert adc.convert(0.3) in (659, 660, 661)
        assert adc.convert(-0.5) in (307, 308, 309)

    def test_transfer_is_monotonic(self, adc):
        codes = adc.convert_many(np.linspace(-1.0, 0.9, 40))
        assert all(b >= a for a, b in zip(codes, codes[1:]))

    def test_extreme_inputs_saturate(self, adc):
        low, high = adc.ideal_input_range()
        assert adc.convert(low * 1.2) == 0
        assert adc.convert(high * 1.2) == 1023

    def test_code_to_input_round_trip(self, adc):
        for code in (100, 528, 900):
            level = adc.code_to_input(code)
            assert abs(adc.convert(level) - code) <= 1

    def test_code_to_input_range_check(self, adc):
        with pytest.raises(SimulationError):
            adc.code_to_input(1024)

    @given(st.integers(min_value=5, max_value=1018))
    @settings(max_examples=25, deadline=None)
    def test_conversion_matches_ideal_quantiser(self, code):
        """Property: converting the ideal level of a code returns that code
        (within one LSB of decision ambiguity)."""
        adc = SarAdc()
        level = adc.code_to_input(code) + 0.25 * (adc.code_to_input(code + 1)
                                                  - adc.code_to_input(code))
        assert abs(adc.convert(level) - code) <= 1


class TestDefectAndVariationManagement:
    def test_clear_defects_across_blocks(self, adc):
        adc.bandgap.netlist.device("r1").defect.value_scale = 1.5
        adc.sarcell.dac.sc_array.netlist.device("cm_p").defect.open_terminal = "p"
        assert adc.has_defect
        adc.clear_defects()
        assert not adc.has_defect

    def test_sample_variation_changes_behaviour(self, adc, rng):
        nominal = adc.evaluate_test_cycle(10)["DAC+"]
        adc.sample_variation(rng)
        varied = adc.evaluate_test_cycle(10)["DAC+"]
        assert varied != pytest.approx(nominal, abs=1e-12)

    def test_defective_adc_still_converts(self, adc):
        adc.sarcell.dac.subdac1.netlist.device("swp_16").defect.open_terminal = "p"
        code = adc.convert(0.0)
        assert 0 <= code <= 1023
