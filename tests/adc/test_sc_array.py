"""Tests for the switched-capacitor array (repro.adc.sc_array)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc import Bandgap, ReferenceBuffer, ScArray, ScArrayInputs
from repro.circuit import VCM_NOMINAL

VREF = ReferenceBuffer().evaluate(Bandgap.VBG_NOMINAL)
VCM = VCM_NOMINAL


def balanced_inputs(code: int, input_diff: float = 0.275) -> ScArrayInputs:
    """Inputs as they appear during a SymBIST cycle at the given code."""
    return ScArrayInputs(
        in_p=VCM + 0.5 * input_diff, in_m=VCM - 0.5 * input_diff,
        m_p=VREF[code], m_m=VREF[32 - code],
        l_p=VREF[code], l_m=VREF[32 - code],
        vcm=VCM, vref_mid=VREF[16])


class TestChargeRedistribution:
    def test_common_mode_invariance_holds(self):
        """Paper Eq. (3): DAC+ + DAC- = 2*Vcm for every code."""
        sc = ScArray()
        for code in range(0, 32, 3):
            out = sc.evaluate(balanced_inputs(code))
            assert out.dac_p + out.dac_m == pytest.approx(2 * VCM, abs=1e-6)

    def test_differential_output_tracks_code(self):
        sc = ScArray()
        low = sc.evaluate(balanced_inputs(0))
        high = sc.evaluate(balanced_inputs(31))
        assert (high.dac_p - high.dac_m) > (low.dac_p - low.dac_m)

    def test_zero_differential_input_centres_output(self):
        sc = ScArray()
        out = sc.evaluate(balanced_inputs(16, input_diff=0.0))
        assert out.dac_p == pytest.approx(out.dac_m, abs=1e-3)

    def test_input_polarity_flips_differential(self):
        sc = ScArray()
        pos = sc.evaluate(balanced_inputs(16, input_diff=0.4))
        neg = sc.evaluate(balanced_inputs(16, input_diff=-0.4))
        assert (pos.dac_p - pos.dac_m) == pytest.approx(
            -(neg.dac_p - neg.dac_m), abs=1e-6)

    @given(st.integers(min_value=0, max_value=31),
           st.floats(min_value=-0.5, max_value=0.5))
    @settings(max_examples=40, deadline=None)
    def test_invariance_property_over_codes_and_inputs(self, code, diff):
        """The Eq. (3) sum is independent of both the code and the FD input."""
        out = ScArray().evaluate(balanced_inputs(code, input_diff=diff))
        assert out.dac_p + out.dac_m == pytest.approx(2 * VCM, abs=1e-6)


class TestCapacitorDefects:
    def test_msb_cap_deviation_breaks_invariance(self):
        sc = ScArray()
        sc.netlist.device("cm_p").defect.value_scale = 1.5
        residuals = []
        for code in range(32):
            out = sc.evaluate(balanced_inputs(code))
            residuals.append(abs(out.dac_p + out.dac_m - 2 * VCM))
        assert max(residuals) > 0.05
        # Detectability is code dependent (paper Fig. 5 discussion).
        assert min(residuals) < max(residuals) / 2

    def test_msb_cap_short_pins_output_to_subdac_level(self):
        sc = ScArray()
        sc.netlist.device("cm_p").defect.shorted_terminals = ("p", "n")
        out = sc.evaluate(balanced_inputs(5))
        assert out.dac_p == pytest.approx(VREF[5], abs=1e-6)

    def test_sampling_cap_open_removes_input_term(self):
        sc = ScArray()
        sc.netlist.device("cs_p").defect.open_terminal = "p"
        out = sc.evaluate(balanced_inputs(16, input_diff=0.4))
        nominal = ScArray().evaluate(balanced_inputs(16, input_diff=0.4))
        assert out.dac_p != pytest.approx(nominal.dac_p, abs=1e-3)

    def test_lsb_cap_defect_is_small_but_visible(self):
        sc = ScArray()
        sc.netlist.device("cl_n").defect.value_scale = 0.5
        worst = 0.0
        for code in (0, 31):
            out = sc.evaluate(balanced_inputs(code))
            worst = max(worst, abs(out.dac_p + out.dac_m - 2 * VCM))
        assert worst > 1e-4


class TestSwitchDefects:
    def test_reset_switch_stuck_off_shifts_common_mode(self):
        sc = ScArray()
        sc.netlist.device("sw_rst_p").defect.open_terminal = "p"
        out = sc.evaluate(balanced_inputs(16))
        assert abs(out.dac_p + out.dac_m - 2 * VCM) > 0.2

    def test_input_switch_stuck_open_loses_signal(self):
        sc = ScArray()
        sc.netlist.device("sw_in_p").defect.open_terminal = "p"
        out = sc.evaluate(balanced_inputs(16, input_diff=0.4))
        assert abs(out.dac_p + out.dac_m - 2 * VCM) > 0.05

    def test_defect_on_one_side_only_affects_that_side(self):
        sc = ScArray()
        sc.netlist.device("cm_p").defect.value_scale = 1.5
        out = sc.evaluate(balanced_inputs(0))
        nominal = ScArray().evaluate(balanced_inputs(0))
        assert out.dac_m == pytest.approx(nominal.dac_m, abs=1e-9)
        assert out.dac_p != pytest.approx(nominal.dac_p, abs=1e-4)

    def test_clear_defects_restores_invariance(self):
        sc = ScArray()
        sc.netlist.device("cm_p").defect.value_scale = 1.5
        sc.clear_defects()
        out = sc.evaluate(balanced_inputs(7))
        assert out.dac_p + out.dac_m == pytest.approx(2 * VCM, abs=1e-6)
