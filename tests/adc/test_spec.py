"""Tests for the ADC specification container (repro.adc.spec)."""

import pytest

from repro.adc import AdcSpecification, MeasuredPerformance, check_specification


class TestSpecification:
    def test_defaults_are_reasonable(self):
        spec = AdcSpecification()
        assert spec.resolution_bits == 10
        assert spec.max_dnl_lsb <= spec.max_inl_lsb

    def test_as_dict_round_trip(self):
        spec = AdcSpecification()
        data = spec.as_dict()
        assert data["min_enob_bits"] == spec.min_enob_bits
        assert len(data) == 7


class TestComplianceCheck:
    def test_compliant_measurement(self):
        measured = MeasuredPerformance(dnl_max_lsb=0.4, inl_max_lsb=0.8,
                                       enob_bits=9.5, offset_lsb=1.0,
                                       gain_error_percent=0.2, missing_codes=0)
        assert check_specification(measured) == []

    def test_each_violation_is_reported(self):
        measured = MeasuredPerformance(dnl_max_lsb=3.0, inl_max_lsb=5.0,
                                       enob_bits=6.0, offset_lsb=9.0,
                                       gain_error_percent=4.0, missing_codes=3)
        violations = check_specification(measured)
        assert set(violations) == {"dnl", "inl", "enob", "offset",
                                   "gain_error", "missing_codes"}

    def test_unmeasured_fields_are_skipped(self):
        measured = MeasuredPerformance(enob_bits=9.9)
        assert check_specification(measured) == []

    def test_negative_offset_uses_absolute_value(self):
        measured = MeasuredPerformance(offset_lsb=-6.0)
        assert check_specification(measured) == ["offset"]

    def test_custom_spec_limits(self):
        strict = AdcSpecification(min_enob_bits=9.9)
        measured = MeasuredPerformance(enob_bits=9.8)
        assert check_specification(measured, strict) == ["enob"]

    def test_boundary_values_pass(self):
        spec = AdcSpecification()
        measured = MeasuredPerformance(dnl_max_lsb=spec.max_dnl_lsb,
                                       inl_max_lsb=spec.max_inl_lsb,
                                       enob_bits=spec.min_enob_bits)
        assert check_specification(measured, spec) == []
