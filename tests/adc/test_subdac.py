"""Tests for the 5-bit sub-DACs (repro.adc.subdac)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc import Bandgap, ReferenceBuffer, SubDac, make_subdac1, make_subdac2
from repro.circuit import SimulationError


@pytest.fixture(scope="module")
def vref():
    return ReferenceBuffer().evaluate(Bandgap.VBG_NOMINAL)


class TestNominalSelection:
    def test_output_selects_requested_tap(self, vref):
        dac = make_subdac1()
        for code in (0, 1, 7, 16, 31):
            out = dac.evaluate(code, vref)
            assert out.out_p == pytest.approx(vref[code], abs=1e-6)
            assert out.out_n == pytest.approx(vref[32 - code], abs=1e-6)

    def test_complementary_sum_is_full_scale(self, vref):
        """Paper Eq. (2): OUT+ + OUT- = VREF[32] for every code."""
        dac = make_subdac2()
        for code in range(32):
            out = dac.evaluate(code, vref)
            assert out.out_p + out.out_n == pytest.approx(vref[32], abs=1e-6)

    def test_code_out_of_range_rejected(self, vref):
        dac = make_subdac1()
        with pytest.raises(SimulationError):
            dac.evaluate(32, vref)
        with pytest.raises(SimulationError):
            dac.evaluate(-1, vref)

    def test_wrong_vref_length_rejected(self):
        dac = make_subdac1()
        with pytest.raises(SimulationError):
            dac.evaluate(0, [0.0, 1.0])

    def test_two_subdacs_are_structurally_identical(self):
        d1, d2 = make_subdac1(), make_subdac2()
        assert len(d1.netlist) == len(d2.netlist)
        assert d1.block_path == "subdac1"
        assert d2.block_path == "subdac2"

    def test_fast_path_matches_full_path(self, vref):
        """The defect-free shortcut must agree with the full mux evaluation."""
        dac = make_subdac1()
        fast = dac.evaluate(13, vref)
        # Force the slow path by marking an unrelated benign defect state and
        # clearing it via a device that does not affect code 13.
        dac.netlist.device("drv_00_p").defect.shorted_terminals = ("s", "b")
        slow = dac.evaluate(13, vref)
        dac.clear_defects()
        assert slow.out_p == pytest.approx(fast.out_p, abs=1e-9)
        assert slow.out_n == pytest.approx(fast.out_n, abs=1e-9)

    @given(st.integers(min_value=0, max_value=31))
    @settings(max_examples=32, deadline=None)
    def test_complementary_property_all_codes(self, code):
        vref_local = ReferenceBuffer().evaluate(Bandgap.VBG_NOMINAL)
        out = make_subdac1().evaluate(code, vref_local)
        assert out.out_p + out.out_n == pytest.approx(vref_local[32], abs=1e-6)


class TestSwitchDefects:
    def test_stuck_open_switch_floats_selected_tap(self, vref):
        dac = make_subdac1()
        dac.netlist.device("swp_07").defect.open_terminal = "p"
        out = dac.evaluate(7, vref)
        assert out.out_p == pytest.approx(0.0, abs=1e-6)  # leakage level
        # Other codes are unaffected.
        assert dac.evaluate(8, vref).out_p == pytest.approx(vref[8], abs=1e-6)

    def test_stuck_closed_switch_averages_two_taps(self, vref):
        dac = make_subdac1()
        dac.netlist.device("swp_00").defect.shorted_terminals = ("p", "n")
        out = dac.evaluate(20, vref)
        expected = 0.5 * (vref[20] + vref[0])
        assert out.out_p == pytest.approx(expected, abs=1e-3)

    def test_control_open_switch_never_conducts(self, vref):
        dac = make_subdac1()
        dac.netlist.device("swn_16").defect.open_terminal = "ctrl"
        out = dac.evaluate(16, vref)  # negative side uses tap 32-16 = 16
        assert out.out_n == pytest.approx(0.0, abs=1e-6)


class TestDriverDefects:
    def test_pullup_short_forces_tap_always_on(self, vref):
        dac = make_subdac1()
        dac.netlist.device("drv_00_p").defect.shorted_terminals = ("d", "s")
        out = dac.evaluate(31, vref)
        expected = 0.5 * (vref[31] + vref[0])
        assert out.out_p == pytest.approx(expected, abs=1e-3)

    def test_pulldown_short_prevents_selection(self, vref):
        dac = make_subdac1()
        dac.netlist.device("drv_12_n").defect.shorted_terminals = ("d", "s")
        out = dac.evaluate(12, vref)
        assert out.out_p == pytest.approx(0.0, abs=1e-6)

    def test_pullup_gate_short_prevents_selection(self, vref):
        dac = make_subdac1()
        dac.netlist.device("drv_05_p").defect.shorted_terminals = ("g", "s")
        out = dac.evaluate(5, vref)
        assert out.out_p == pytest.approx(0.0, abs=1e-6)

    def test_benign_driver_defect_is_invisible(self, vref):
        dac = make_subdac1()
        dac.netlist.device("drv_09_n").defect.shorted_terminals = ("s", "b")
        out = dac.evaluate(9, vref)
        assert out.out_p == pytest.approx(vref[9], abs=1e-6)

    def test_driver_defect_affects_both_outputs_via_shared_decoder(self, vref):
        """Driver j is shared by the positive tap j and the negative tap 32-j."""
        dac = make_subdac1()
        dac.netlist.device("drv_03_p").defect.shorted_terminals = ("d", "s")
        out = dac.evaluate(20, vref)
        # Positive output: taps 20 and 3 fight; negative output: taps 12 and 29.
        assert out.out_p == pytest.approx(0.5 * (vref[20] + vref[3]), abs=1e-3)
        assert out.out_n == pytest.approx(0.5 * (vref[12] + vref[29]), abs=1e-3)


class TestBufferDefects:
    def test_follower_open_floats_output(self, vref):
        dac = make_subdac1()
        dac.netlist.device("bufp_sf").defect.open_terminal = "s"
        assert dac.evaluate(10, vref).out_p == pytest.approx(0.0, abs=1e-6)

    def test_bias_stuck_on_drops_output(self, vref):
        dac = make_subdac1()
        dac.netlist.device("bufn_bias").defect.shorted_terminals = ("d", "s")
        nominal = vref[32 - 10]
        assert dac.evaluate(10, vref).out_n < nominal - 0.05
