"""Tests for the Vcm generator and the behavioral digital blocks of the ADC."""

import pytest

from repro.adc import (Bandgap, CYCLES_PER_CONVERSION, N_PULSES, Phase,
                       PhaseGenerator, SarControl, SarLogic, VcmGenerator)
from repro.circuit import SimulationError, VCM_NOMINAL

VBG = Bandgap.VBG_NOMINAL


class TestVcmGenerator:
    def test_nominal_is_half_bandgap(self):
        assert VcmGenerator().evaluate(VBG) == pytest.approx(VBG / 2, abs=2e-3)

    def test_tracks_bandgap_voltage(self):
        gen = VcmGenerator()
        assert gen.evaluate(1.0) == pytest.approx(0.5, abs=2e-3)

    def test_divider_resistor_open_rails_output(self):
        gen = VcmGenerator()
        gen.netlist.device("r_top").defect.open_terminal = "p"
        assert gen.evaluate(VBG) < 0.1

    def test_divider_resistor_deviation_shifts_output(self):
        gen = VcmGenerator()
        gen.netlist.device("r_bot").defect.value_scale = 1.5
        assert gen.evaluate(VBG) > VCM_NOMINAL + 0.05

    def test_decoupling_cap_short_grounds_output(self):
        gen = VcmGenerator()
        gen.netlist.device("c_dec").defect.shorted_terminals = ("p", "n")
        assert gen.evaluate(VBG) == 0.0

    def test_decoupling_cap_open_is_dc_invisible(self):
        """The benign defect class behind the low L-W coverage of this block."""
        gen = VcmGenerator()
        gen.netlist.device("c_dec").defect.open_terminal = "p"
        assert gen.evaluate(VBG) == pytest.approx(VcmGenerator().evaluate(VBG),
                                                  abs=1e-9)

    def test_follower_open_kills_output(self):
        gen = VcmGenerator()
        gen.netlist.device("mp_sf").defect.open_terminal = "s"
        assert gen.evaluate(VBG) == 0.0

    def test_observables(self):
        assert set(VcmGenerator().observables(VBG)) == {"VCM"}


class TestPhaseGenerator:
    def test_cycle_zero_is_sampling(self):
        assert PhaseGenerator().phase_of_cycle(0) is Phase.SAMPLE

    def test_last_cycle_is_capture(self):
        pg = PhaseGenerator()
        assert pg.phase_of_cycle(CYCLES_PER_CONVERSION - 1) is Phase.CAPTURE

    def test_conversion_cycles_are_convert(self):
        pg = PhaseGenerator()
        for cycle in range(1, 11):
            assert pg.phase_of_cycle(cycle) is Phase.CONVERT

    def test_pattern_repeats_across_conversions(self):
        pg = PhaseGenerator()
        assert pg.phase_of_cycle(12) is Phase.SAMPLE
        assert pg.phase_of_cycle(23) is Phase.CAPTURE

    def test_bit_index_marches_msb_to_lsb(self):
        pg = PhaseGenerator()
        indices = [pg.bit_index_of_cycle(c) for c in range(12)]
        assert indices == [-1, 9, 8, 7, 6, 5, 4, 3, 2, 1, 0, -1]

    def test_schedule_length(self):
        assert len(PhaseGenerator().schedule(3)) == 3 * CYCLES_PER_CONVERSION


class TestSarControl:
    def test_twelve_pulses(self):
        assert N_PULSES == 12

    def test_one_hot_encoding(self):
        ctrl = SarControl()
        for cycle in range(24):
            pulses = ctrl.pulses_for_cycle(cycle)
            assert sum(pulses) == 1
            assert pulses.index(1) == cycle % 12

    def test_active_pulse_wraps(self):
        ctrl = SarControl()
        assert ctrl.active_pulse(13) == 1

    def test_negative_cycle_rejected(self):
        with pytest.raises(SimulationError):
            SarControl().pulses_for_cycle(-1)


class TestSarLogic:
    def test_binary_search_all_keep(self):
        logic = SarLogic()
        logic.start_conversion()
        while not logic.done:
            logic.apply_decision(1)
        assert logic.result() == 1023

    def test_binary_search_all_clear(self):
        logic = SarLogic()
        logic.start_conversion()
        while not logic.done:
            logic.apply_decision(0)
        assert logic.result() == 0

    def test_trial_code_sets_bit_under_test(self):
        logic = SarLogic()
        logic.start_conversion()
        assert logic.trial_code() == 512
        logic.apply_decision(0)
        assert logic.trial_code() == 256
        logic.apply_decision(1)
        assert logic.trial_code() == 256 + 128

    def test_emulated_threshold_search(self):
        """The SAR loop converges to the target code for an ideal comparator."""
        target = 619
        logic = SarLogic()
        logic.start_conversion()
        while not logic.done:
            logic.apply_decision(1 if logic.trial_code() <= target else 0)
        assert logic.result() == target

    def test_result_before_completion_raises(self):
        logic = SarLogic()
        logic.start_conversion()
        with pytest.raises(SimulationError):
            logic.result()

    def test_decision_after_completion_raises(self):
        logic = SarLogic()
        logic.start_conversion()
        for _ in range(10):
            logic.apply_decision(1)
        with pytest.raises(SimulationError):
            logic.apply_decision(1)

    def test_invalid_decision_rejected(self):
        logic = SarLogic()
        logic.start_conversion()
        with pytest.raises(SimulationError):
            logic.apply_decision(2)

    def test_invalid_bit_count_rejected(self):
        with pytest.raises(SimulationError):
            SarLogic(n_bits=0)
