"""Tests for the test-escape analysis (repro.analysis.escape_analysis)."""

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.analysis import EscapeAnalysisResult, EscapeRecord, analyze_escapes
from repro.circuit import CoverageError
from repro.defects import Defect, DefectKind, SamplingPlan
from repro.functional_test import FunctionalBistBaseline


def _dummy_record(violations, gross=False):
    defect = Defect(defect_id="b/d:passive_high", block_path="b",
                    device_name="d", kind=DefectKind.PASSIVE_HIGH)
    return EscapeRecord(defect=defect, spec_violations=violations,
                        gross_failure=gross)


class TestEscapeRecordAggregation:
    def test_functional_escape_flag(self):
        assert _dummy_record(["dnl"]).is_functional_escape
        assert _dummy_record([], gross=True).is_functional_escape
        assert not _dummy_record([]).is_functional_escape

    def test_result_counters(self):
        result = EscapeAnalysisResult(
            records=[_dummy_record(["dnl"]), _dummy_record([]),
                     _dummy_record(["enob", "inl"])],
            n_undetected_total=10)
        assert result.n_analyzed == 3
        assert result.n_functional_escapes == 2
        assert result.n_benign == 1
        assert result.functional_escape_fraction == pytest.approx(2 / 3)
        assert result.violations_histogram() == {"dnl": 1, "enob": 1, "inl": 1}

    def test_empty_analysis_fraction_raises(self):
        result = EscapeAnalysisResult(records=[], n_undetected_total=0)
        with pytest.raises(CoverageError):
            result.functional_escape_fraction


class TestAnalyzeEscapes:
    def test_escapes_of_offset_compensation_are_mostly_benign(self, campaign,
                                                              rng):
        """The paper's expectation: most SymBIST escapes are functionally
        benign (that is exactly why the L-W coverage understates quality for
        blocks like the offset compensation)."""
        result = campaign.run(SamplingPlan(exhaustive=True),
                              blocks=["offset_compensation", "vcm_generator"],
                              rng=rng)
        analysis = analyze_escapes(
            result, adc=campaign.adc, injector=campaign.injector,
            baseline=FunctionalBistBaseline(linearity_span_codes=32,
                                            samples_per_code=4,
                                            sine_samples=0),
            max_defects=12, rng=np.random.default_rng(3))
        assert analysis.n_analyzed <= 12
        assert analysis.n_undetected_total >= analysis.n_analyzed
        assert analysis.functional_escape_fraction < 0.5
        assert set(analysis.by_block()) <= {"offset_compensation",
                                            "vcm_generator"}

    def test_no_undetected_defects_short_circuit(self, campaign, rng):
        result = campaign.run(SamplingPlan(exhaustive=True),
                              blocks=["rs_latch"], rng=rng)
        detected_only = [r for r in result.records if r.detected]
        if len(detected_only) == len(result.records):
            analysis = analyze_escapes(result, adc=campaign.adc,
                                       injector=campaign.injector)
            assert analysis.n_analyzed == 0
        else:
            analysis = analyze_escapes(
                result, adc=campaign.adc, injector=campaign.injector,
                baseline=FunctionalBistBaseline(linearity_span_codes=32,
                                                samples_per_code=4,
                                                sine_samples=0),
                max_defects=4, rng=rng)
            assert analysis.n_analyzed <= 4

    def test_max_defects_caps_the_workload(self, campaign, rng):
        result = campaign.run(SamplingPlan(exhaustive=True),
                              blocks=["offset_compensation"], rng=rng)
        analysis = analyze_escapes(
            result, adc=campaign.adc, injector=campaign.injector,
            baseline=FunctionalBistBaseline(linearity_span_codes=32,
                                            samples_per_code=4,
                                            sine_samples=0),
            max_defects=3, rng=rng)
        assert analysis.n_analyzed == 3
