"""Tests for the Monte Carlo runner and the yield-loss model."""

import numpy as np
import pytest

from repro.analysis import (MonteCarloRunner, analytic_yield_loss,
                            empirical_yield_loss, yield_loss_sweep)
from repro.circuit import CalibrationError, SimulationError
from repro.core import calibrate_windows


class TestMonteCarloRunner:
    def test_runs_requested_samples(self):
        runner = MonteCarloRunner(seed=1)
        result = runner.run(lambda adc, i: adc.operating_point().vbg, 5)
        assert result.n_samples == 5
        assert len(result.samples) == 5

    def test_samples_vary_across_instances(self):
        runner = MonteCarloRunner(seed=2)
        result = runner.run(lambda adc, i: adc.operating_point().vbg, 8)
        assert len(set(result.samples)) > 1

    def test_same_seed_reproducible(self):
        first = MonteCarloRunner(seed=3).run(
            lambda adc, i: adc.operating_point().vbg, 4)
        second = MonteCarloRunner(seed=3).run(
            lambda adc, i: adc.operating_point().vbg, 4)
        assert first.samples == second.samples

    def test_evaluate_receives_index(self):
        indices = []
        MonteCarloRunner(seed=4).run(
            lambda adc, i: indices.append(i), 3)
        assert indices == [0, 1, 2]

    def test_zero_samples_rejected(self):
        with pytest.raises(SimulationError):
            MonteCarloRunner().run(lambda adc, i: 0.0, 0)


class TestAnalyticYieldLoss:
    def test_k5_yield_loss_is_negligible(self):
        """Paper Section VI: k = 5 guarantees negligible yield loss."""
        point = analytic_yield_loss(5.0)
        assert point.analytic_per_run < 1e-5
        assert point.analytic_ppm < 10.0

    def test_small_k_costs_yield(self):
        assert analytic_yield_loss(2.0).analytic_per_run > 0.05

    def test_monotone_in_k(self):
        losses = [analytic_yield_loss(k).analytic_per_run
                  for k in (2.0, 3.0, 4.0, 5.0, 6.0)]
        assert all(b < a for a, b in zip(losses, losses[1:]))

    def test_uncorrelated_variant_is_upper_bound(self):
        corr = analytic_yield_loss(4.0, correlated_within_run=True)
        uncorr = analytic_yield_loss(4.0, correlated_within_run=False)
        assert uncorr.analytic_per_run >= corr.analytic_per_run

    def test_invalid_k_rejected(self):
        with pytest.raises(CalibrationError):
            analytic_yield_loss(0.0)


class TestEmpiricalYieldLoss:
    def test_requires_residual_pools(self):
        light = calibrate_windows(n_monte_carlo=2, rng=np.random.default_rng(0))
        with pytest.raises(CalibrationError):
            empirical_yield_loss(light, 5.0)

    def test_k5_rarely_fails_defect_free_instances(self, calibration):
        point = empirical_yield_loss(calibration, 5.0)
        assert point.empirical == 0.0
        assert point.empirical_ci_half_width is not None

    def test_tiny_k_fails_most_instances(self, calibration):
        point = empirical_yield_loss(calibration, 0.2)
        assert point.empirical > 0.4

    def test_sweep_combines_analytic_and_empirical(self, calibration):
        points = yield_loss_sweep(calibration, k_values=(2.0, 5.0))
        assert len(points) == 2
        assert points[0].empirical is not None
        assert points[0].analytic_per_run > points[1].analytic_per_run

    def test_sweep_without_calibration_is_analytic_only(self):
        points = yield_loss_sweep(None, k_values=(3.0, 5.0))
        assert all(p.empirical is None for p in points)
