"""Tests for repro.analysis.statistics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (StatisticsError, gaussian_exceedance_probability,
                            per_test_to_per_run, percentile, proportion_ci,
                            summarize)


class TestSummaries:
    def test_summarize_basic(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.n == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0 and stats.maximum == 4.0
        assert stats.std == pytest.approx(np.std([1, 2, 3, 4], ddof=1))

    def test_single_sample_has_zero_std(self):
        stats = summarize([5.0])
        assert stats.std == 0.0
        assert math.isinf(stats.mean_ci95_half_width)

    def test_empty_sample_rejected(self):
        with pytest.raises(StatisticsError):
            summarize([])

    def test_ci_half_width_shrinks_with_n(self):
        small = summarize(list(range(10)))
        large = summarize(list(range(10)) * 10)
        assert large.mean_ci95_half_width < small.mean_ci95_half_width

    def test_percentile(self):
        values = list(range(101))
        assert percentile(values, 50) == pytest.approx(50.0)
        assert percentile(values, 95) == pytest.approx(95.0)
        with pytest.raises(StatisticsError):
            percentile([], 50)
        with pytest.raises(StatisticsError):
            percentile([1.0], 150)


class TestProportionCi:
    def test_matches_wilson_definition(self):
        center, half = proportion_ci(87, 100)
        assert 0.79 < center - half < center + half < 0.95

    def test_invalid_inputs(self):
        with pytest.raises(StatisticsError):
            proportion_ci(1, 0)
        with pytest.raises(StatisticsError):
            proportion_ci(5, 4)


class TestGaussianTails:
    def test_known_values(self):
        assert gaussian_exceedance_probability(0.0) == pytest.approx(1.0)
        assert gaussian_exceedance_probability(1.0) == pytest.approx(0.3173,
                                                                     abs=1e-3)
        assert gaussian_exceedance_probability(3.0) == pytest.approx(0.0027,
                                                                     abs=1e-4)
        assert gaussian_exceedance_probability(5.0) < 1e-6

    def test_monotonically_decreasing(self):
        ks = [0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        probs = [gaussian_exceedance_probability(k) for k in ks]
        assert all(b < a for a, b in zip(probs, probs[1:]))

    def test_negative_k_rejected(self):
        with pytest.raises(StatisticsError):
            gaussian_exceedance_probability(-1.0)


class TestPerRunAggregation:
    def test_single_check_is_identity(self):
        assert per_test_to_per_run(0.01, 1) == pytest.approx(0.01)

    def test_many_checks_increase_probability(self):
        assert per_test_to_per_run(0.01, 10) > 0.09

    def test_probability_stays_bounded(self):
        assert per_test_to_per_run(0.5, 100) <= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(StatisticsError):
            per_test_to_per_run(1.5, 2)
        with pytest.raises(StatisticsError):
            per_test_to_per_run(0.1, 0)

    @given(st.floats(min_value=0.0, max_value=1.0),
           st.integers(min_value=1, max_value=500))
    @settings(max_examples=60, deadline=None)
    def test_result_is_valid_probability(self, p, n):
        value = per_test_to_per_run(p, n)
        assert 0.0 <= value <= 1.0
        assert value >= p - 1e-12
