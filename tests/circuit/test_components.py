"""Tests for repro.circuit.components (devices and defect state)."""

import pytest

from repro.circuit import (ComponentError, DefectState, Device, DeviceKind,
                           PullDirection, TERMINALS, capacitor, diode, nmos,
                           npn, pmos, pnp, resistor, switch)


class TestDeviceConstruction:
    def test_resistor_terminals(self):
        dev = resistor("r1", "a", "b", 1000.0)
        assert dev.kind is DeviceKind.RESISTOR
        assert dev.net_of("p") == "a"
        assert dev.net_of("n") == "b"
        assert dev.value == pytest.approx(1000.0)

    def test_capacitor_value(self):
        dev = capacitor("c1", "x", "y", 1e-12)
        assert dev.effective_value() == pytest.approx(1e-12)

    def test_switch_has_control_terminal(self):
        dev = switch("s1", "a", "b", "en")
        assert dev.net_of("ctrl") == "en"
        assert dev.params["ron"] == pytest.approx(100.0)

    def test_mos_terminal_order(self):
        dev = nmos("m1", d="out", g="in", s="gnd")
        assert dev.net_of("d") == "out"
        assert dev.net_of("g") == "in"
        assert dev.net_of("b") == "vss"

    def test_pmos_default_bulk(self):
        dev = pmos("m2", d="out", g="in", s="vdd")
        assert dev.net_of("b") == "vdd"

    def test_bipolar_and_diode_kinds(self):
        assert npn("q1", "c", "b", "e").kind is DeviceKind.NPN
        assert pnp("q2", "c", "b", "e").kind is DeviceKind.PNP
        assert diode("d1", "a", "k").kind is DeviceKind.DIODE

    def test_unknown_terminal_raises(self):
        dev = resistor("r1", "a", "b", 10.0)
        with pytest.raises(ComponentError):
            dev.net_of("g")

    def test_negative_passive_value_rejected(self):
        with pytest.raises(ComponentError):
            resistor("r1", "a", "b", -5.0)
        with pytest.raises(ComponentError):
            capacitor("c1", "a", "b", 0.0)

    def test_zero_ron_switch_rejected(self):
        with pytest.raises(ComponentError):
            switch("s1", "a", "b", "en", ron=0.0)

    def test_terminal_mismatch_rejected(self):
        with pytest.raises(ComponentError):
            Device("bad", DeviceKind.RESISTOR, {"p": "a"}, {"value": 1.0})
        with pytest.raises(ComponentError):
            Device("bad", DeviceKind.RESISTOR,
                   {"p": "a", "n": "b", "x": "c"}, {"value": 1.0})

    def test_terminal_table_consistency(self):
        for kind, terms in TERMINALS.items():
            assert len(terms) == len(set(terms))
            assert len(terms) >= 2


class TestDefectState:
    def test_new_device_is_clean(self):
        dev = resistor("r1", "a", "b", 10.0)
        assert not dev.has_defect
        assert dev.defect.is_clean

    def test_short_marks_defective(self):
        dev = nmos("m1", "d", "g", "s")
        dev.defect.shorted_terminals = ("d", "s")
        assert dev.has_defect
        assert dev.is_shorted("d", "s")
        assert dev.is_shorted("s", "d")  # order-insensitive
        assert not dev.is_shorted("g", "s")

    def test_open_marks_defective(self):
        dev = nmos("m1", "d", "g", "s")
        dev.defect.open_terminal = "g"
        dev.defect.open_pull = PullDirection.DOWN
        assert dev.has_defect
        assert dev.is_open("g")
        assert not dev.is_open("d")

    def test_value_scale_marks_defective(self):
        dev = capacitor("c1", "a", "b", 1e-12)
        dev.defect.value_scale = 1.5
        assert dev.has_defect
        assert dev.effective_value() == pytest.approx(1.5e-12)

    def test_clear_defect_restores_clean_state(self):
        dev = resistor("r1", "a", "b", 10.0)
        dev.defect.shorted_terminals = ("p", "n")
        dev.defect.value_scale = 0.5
        dev.clear_defect()
        assert not dev.has_defect
        assert dev.effective_value() == pytest.approx(10.0)

    def test_defect_state_clear_resets_everything(self):
        state = DefectState(shorted_terminals=("a", "b"), open_terminal="a",
                            value_scale=2.0)
        state.clear()
        assert state.is_clean


class TestAreaProxy:
    def test_mos_area_scales_with_width(self):
        small = nmos("m1", "d", "g", "s", w=1e-6)
        large = nmos("m2", "d", "g", "s", w=10e-6)
        assert large.area_proxy() == pytest.approx(10 * small.area_proxy())

    def test_resistor_area_has_floor(self):
        tiny = resistor("r1", "a", "b", 1.0)
        assert tiny.area_proxy() >= 0.1

    def test_capacitor_area_scales_with_value(self):
        small = capacitor("c1", "a", "b", 1e-13)
        large = capacitor("c2", "a", "b", 1e-12)
        assert large.area_proxy() > small.area_proxy()

    def test_bipolar_area_scales_with_emitter_area(self):
        unit = pnp("q1", "c", "b", "e", area=1.0)
        big = pnp("q2", "c", "b", "e", area=8.0)
        assert big.area_proxy() == pytest.approx(8 * unit.area_proxy())

    def test_all_proxies_positive(self):
        devices = [resistor("r", "a", "b", 100.0), capacitor("c", "a", "b", 1e-15),
                   switch("s", "a", "b", "e"), nmos("mn", "d", "g", "s"),
                   pmos("mp", "d", "g", "s"), diode("dd", "a", "k"),
                   npn("qn", "c", "b", "e"), pnp("qp", "c", "b", "e")]
        assert all(dev.area_proxy() > 0 for dev in devices)
