"""Tests for repro.circuit.netlist (netlists and the block hierarchy)."""

import pytest

from repro.circuit import (DeviceKind, Netlist, NetlistError, NetlistHierarchy,
                           resistor)


def make_small_netlist(name="blk"):
    nl = Netlist(name)
    nl.add_resistor("r1", "a", "b", 100.0)
    nl.add_capacitor("c1", "b", "gnd", 1e-12)
    nl.add_nmos("m1", d="b", g="a", s="gnd")
    nl.add_switch("s1", "a", "c", "en")
    return nl


class TestNetlist:
    def test_empty_name_rejected(self):
        with pytest.raises(NetlistError):
            Netlist("")

    def test_add_and_retrieve(self):
        nl = make_small_netlist()
        assert len(nl) == 4
        assert nl.device("r1").value == pytest.approx(100.0)
        assert "m1" in nl
        assert "missing" not in nl

    def test_duplicate_name_rejected(self):
        nl = make_small_netlist()
        with pytest.raises(NetlistError):
            nl.add(resistor("r1", "x", "y", 1.0))

    def test_missing_device_raises(self):
        nl = make_small_netlist()
        with pytest.raises(NetlistError):
            nl.device("nope")

    def test_devices_preserve_insertion_order(self):
        nl = make_small_netlist()
        assert [d.name for d in nl.devices] == ["r1", "c1", "m1", "s1"]

    def test_devices_of_kind(self):
        nl = make_small_netlist()
        passives = nl.devices_of_kind(DeviceKind.RESISTOR, DeviceKind.CAPACITOR)
        assert {d.name for d in passives} == {"r1", "c1"}

    def test_nets_are_sorted_and_unique(self):
        nl = make_small_netlist()
        nets = nl.nets
        assert nets == sorted(nets)
        assert len(nets) == len(set(nets))
        assert "gnd" in nets

    def test_summary_counts(self):
        nl = make_small_netlist()
        summary = nl.summary()
        assert summary["resistor"] == 1
        assert summary["nmos"] == 1

    def test_clear_defects(self):
        nl = make_small_netlist()
        nl.device("r1").defect.value_scale = 1.5
        nl.device("m1").defect.open_terminal = "d"
        assert nl.has_defect
        assert len(nl.defective_devices()) == 2
        nl.clear_defects()
        assert not nl.has_defect


class TestHierarchy:
    def test_register_and_lookup(self):
        h = NetlistHierarchy("ip")
        blk = make_small_netlist("blk_a")
        h.register("blk_a", blk)
        assert h.netlist("blk_a") is blk
        assert h.entry("blk_a").group == "ams"
        assert len(h) == 1

    def test_duplicate_path_rejected(self):
        h = NetlistHierarchy("ip")
        h.register("blk", make_small_netlist())
        with pytest.raises(NetlistError):
            h.register("blk", make_small_netlist())

    def test_unknown_group_rejected(self):
        h = NetlistHierarchy("ip")
        with pytest.raises(NetlistError):
            h.register("blk", make_small_netlist(), group="mixed")

    def test_unknown_path_raises(self):
        h = NetlistHierarchy("ip")
        with pytest.raises(NetlistError):
            h.netlist("nothing")

    def test_iter_devices_yields_paths(self):
        h = NetlistHierarchy("ip")
        h.register("a", make_small_netlist("a"))
        h.register("b", make_small_netlist("b"), group="digital")
        all_devices = list(h.iter_devices())
        assert len(all_devices) == 8
        ams_only = list(h.iter_devices(group="ams"))
        assert len(ams_only) == 4
        assert all(path == "a" for path, _ in ams_only)

    def test_device_count(self):
        h = NetlistHierarchy("ip")
        h.register("a", make_small_netlist("a"))
        assert h.device_count() == 4

    def test_find_device(self):
        h = NetlistHierarchy("ip")
        h.register("a", make_small_netlist("a"))
        assert h.find_device("a", "r1").name == "r1"

    def test_clear_defects_across_blocks(self):
        h = NetlistHierarchy("ip")
        blk_a, blk_b = make_small_netlist("a"), make_small_netlist("b")
        h.register("a", blk_a)
        h.register("b", blk_b)
        blk_a.device("r1").defect.value_scale = 0.5
        blk_b.device("m1").defect.open_terminal = "g"
        h.clear_defects()
        assert not blk_a.has_defect and not blk_b.has_defect

    def test_summary_per_block(self):
        h = NetlistHierarchy("ip")
        h.register("a", make_small_netlist("a"))
        assert h.summary()["a"]["switch"] == 1
