"""Tests for waveform traces (repro.circuit.signals)."""

import numpy as np
import pytest

from repro.circuit import SimulationError, Trace, WaveformSet


class TestTrace:
    def test_append_and_length(self):
        trace = Trace("x")
        trace.append(0.0, 1.0)
        trace.append(1e-9, 2.0)
        assert len(trace) == 2
        assert list(trace) == [(0.0, 1.0), (1e-9, 2.0)]

    def test_non_monotonic_time_rejected(self):
        trace = Trace("x")
        trace.append(1.0, 0.0)
        with pytest.raises(SimulationError):
            trace.append(0.5, 0.0)

    def test_equal_times_allowed(self):
        trace = Trace("x")
        trace.append(1.0, 0.0)
        trace.append(1.0, 1.0)  # zero-width glitch sample
        assert len(trace) == 2

    def test_extend(self):
        trace = Trace("x")
        trace.extend([0.0, 1.0, 2.0], [5.0, 6.0, 7.0])
        assert trace.values == [5.0, 6.0, 7.0]

    def test_as_arrays(self):
        trace = Trace("x")
        trace.extend([0.0, 1.0], [2.0, 3.0])
        times, values = trace.as_arrays()
        assert isinstance(times, np.ndarray)
        assert values.tolist() == [2.0, 3.0]

    def test_value_at_zero_order_hold(self):
        trace = Trace("x")
        trace.extend([0.0, 1.0, 2.0], [10.0, 20.0, 30.0])
        assert trace.value_at(0.5) == pytest.approx(10.0)
        assert trace.value_at(1.0) == pytest.approx(20.0)
        assert trace.value_at(5.0) == pytest.approx(30.0)
        assert trace.value_at(-1.0) == pytest.approx(10.0)

    def test_statistics(self):
        trace = Trace("x")
        trace.extend(range(4), [1.0, -3.0, 2.0, 0.0])
        assert trace.min() == -3.0
        assert trace.max() == 2.0
        assert trace.mean() == pytest.approx(0.0)
        assert trace.peak_deviation(0.0) == pytest.approx(3.0)

    def test_excursions_outside_window(self):
        trace = Trace("x")
        trace.extend(range(5), [0.0, 0.5, -0.6, 0.2, 1.5])
        assert trace.excursions_outside(-0.5, 0.5) == 2

    def test_empty_trace_statistics_raise(self):
        trace = Trace("x")
        with pytest.raises(SimulationError):
            trace.min()
        with pytest.raises(SimulationError):
            trace.value_at(0.0)


class TestWaveformSet:
    def test_record_creates_traces(self):
        waves = WaveformSet()
        waves.record("a", 0.0, 1.0)
        waves.record("a", 1.0, 2.0)
        waves.record("b", 0.0, 3.0)
        assert len(waves) == 2
        assert "a" in waves and "b" in waves
        assert len(waves["a"]) == 2

    def test_record_many(self):
        waves = WaveformSet()
        waves.record_many(0.0, {"x": 1.0, "y": 2.0})
        waves.record_many(1.0, {"x": 3.0, "y": 4.0})
        assert waves["y"].values == [2.0, 4.0]

    def test_missing_trace_raises(self):
        waves = WaveformSet()
        with pytest.raises(SimulationError):
            waves["nothing"]

    def test_names(self):
        waves = WaveformSet()
        waves.record("z", 0.0, 0.0)
        waves.record("a", 0.0, 0.0)
        assert waves.names == ["z", "a"]  # insertion order

    def test_to_csv_shared_axis(self):
        waves = WaveformSet()
        waves.record_many(0.0, {"x": 1.0, "y": 2.0})
        waves.record_many(1e-9, {"x": 3.0, "y": 4.0})
        csv = waves.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "time,x,y"
        assert len(lines) == 3

    def test_to_csv_mismatched_axis_raises(self):
        waves = WaveformSet()
        waves.record("x", 0.0, 1.0)
        waves.record("x", 1.0, 1.0)
        waves.record("y", 0.0, 1.0)
        with pytest.raises(SimulationError):
            waves.to_csv()

    def test_to_csv_empty(self):
        assert WaveformSet().to_csv() == ""
