"""Tests for the cycle-based transient engine (repro.circuit.simulator)."""

import numpy as np
import pytest

from repro.circuit import (GlitchModel, SequenceStimulus, SimulationError,
                           TransientSimulator)


def ramp_stimulus(n):
    return SequenceStimulus([{"x": float(i)} for i in range(n)])


class TestSequenceStimulus:
    def test_length_and_lookup(self):
        stim = ramp_stimulus(4)
        assert len(stim) == 4
        assert stim.inputs_for_cycle(2)["x"] == 2.0

    def test_out_of_range_cycle(self):
        stim = ramp_stimulus(2)
        with pytest.raises(SimulationError):
            stim.inputs_for_cycle(2)
        with pytest.raises(SimulationError):
            stim.inputs_for_cycle(-1)


class TestTransientSimulator:
    def test_settled_samples_one_per_cycle(self):
        sim = TransientSimulator(clock_frequency=1e6)
        result = sim.run(ramp_stimulus(5),
                         lambda cycle, inputs: {"y": 2 * inputs["x"]})
        assert result.n_cycles == 5
        assert result.settled["y"].values == [0.0, 2.0, 4.0, 6.0, 8.0]
        assert result.duration == pytest.approx(5e-6)

    def test_without_glitch_model_waveform_equals_settled(self):
        sim = TransientSimulator(clock_frequency=1e6)
        result = sim.run(ramp_stimulus(3),
                         lambda cycle, inputs: {"y": inputs["x"]})
        assert result.waveforms["y"].values == result.settled["y"].values

    def test_glitch_model_adds_intra_cycle_samples(self):
        sim = TransientSimulator(clock_frequency=1e6,
                                 glitch_model=GlitchModel(samples_per_cycle=6))
        result = sim.run(ramp_stimulus(4),
                         lambda cycle, inputs: {"y": inputs["x"]})
        assert len(result.waveforms["y"]) == 4 * 6
        assert len(result.settled["y"]) == 4

    def test_glitch_final_sample_is_settled_value(self):
        model = GlitchModel(samples_per_cycle=5)
        samples = model.intra_cycle_samples(0.0, 1.0, 1e-6)
        assert samples[-1][1] == pytest.approx(1.0)
        assert samples[-1][0] == pytest.approx(1e-6)

    def test_glitch_amplitude_scales_with_step(self):
        model = GlitchModel(samples_per_cycle=8, amplitude_floor=0.0)
        small = model.intra_cycle_samples(0.0, 0.1, 1e-6)
        large = model.intra_cycle_samples(0.0, 1.0, 1e-6)
        small_peak = max(abs(v - 0.1) for _, v in small)
        large_peak = max(abs(v - 1.0) for _, v in large)
        assert large_peak > small_peak

    def test_observable_filter(self):
        sim = TransientSimulator(clock_frequency=1e6)
        result = sim.run(ramp_stimulus(3),
                         lambda cycle, inputs: {"a": 1.0, "b": 2.0},
                         observables=["a"])
        assert "a" in result.settled.names
        assert "b" not in result.settled.names

    def test_empty_stimulus_raises(self):
        sim = TransientSimulator()
        with pytest.raises(SimulationError):
            sim.run(SequenceStimulus([]), lambda c, i: {"y": 0.0})

    def test_empty_outputs_raise(self):
        sim = TransientSimulator()
        with pytest.raises(SimulationError):
            sim.run(ramp_stimulus(2), lambda c, i: {})

    def test_invalid_clock_rejected(self):
        with pytest.raises(SimulationError):
            TransientSimulator(clock_frequency=0.0)

    def test_evaluate_receives_cycle_index(self):
        seen = []
        sim = TransientSimulator()
        sim.run(ramp_stimulus(4),
                lambda cycle, inputs: (seen.append(cycle) or {"y": 0.0}))
        assert seen == [0, 1, 2, 3]


class TestVariationIntegration:
    def test_glitch_model_with_rng_is_reproducible(self):
        model_a = GlitchModel(rng=np.random.default_rng(3))
        model_b = GlitchModel(rng=np.random.default_rng(3))
        samples_a = model_a.intra_cycle_samples(0.0, 0.5, 1e-6)
        samples_b = model_b.intra_cycle_samples(0.0, 0.5, 1e-6)
        assert samples_a == samples_b
