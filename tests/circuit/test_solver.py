"""Tests for the nodal-analysis solver (repro.circuit.solver)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import LinearNetwork, SolverError, solve_resistor_string


class TestLinearNetwork:
    def test_voltage_divider(self):
        net = LinearNetwork()
        net.set_voltage("top", 1.0)
        net.set_voltage("gnd", 0.0)
        net.add_resistor("top", "mid", 1000.0)
        net.add_resistor("mid", "gnd", 1000.0)
        assert net.solve()["mid"] == pytest.approx(0.5)

    def test_unequal_divider(self):
        net = LinearNetwork()
        net.set_voltage("top", 1.2)
        net.set_voltage("gnd", 0.0)
        net.add_resistor("top", "mid", 3000.0)
        net.add_resistor("mid", "gnd", 1000.0)
        assert net.solve()["mid"] == pytest.approx(0.3)

    def test_current_source_into_resistor(self):
        net = LinearNetwork()
        net.set_voltage("gnd", 0.0)
        net.add_resistor("node", "gnd", 100.0)
        net.add_current("node", 1e-3)
        assert net.solve()["node"] == pytest.approx(0.1)

    def test_fixed_nodes_returned_verbatim(self):
        net = LinearNetwork()
        net.set_voltage("a", 0.7)
        net.set_voltage("b", 0.2)
        net.add_resistor("a", "b", 50.0)
        solution = net.solve()
        assert solution["a"] == pytest.approx(0.7)
        assert solution["b"] == pytest.approx(0.2)

    def test_no_fixed_node_raises(self):
        net = LinearNetwork()
        net.add_resistor("a", "b", 10.0)
        with pytest.raises(SolverError):
            net.solve()

    def test_floating_node_raises(self):
        net = LinearNetwork()
        net.set_voltage("gnd", 0.0)
        net.add_resistor("a", "gnd", 10.0)
        net.add_conductance("b", "c", 1e-3)  # island disconnected from gnd
        with pytest.raises(SolverError):
            net.solve()

    def test_negative_conductance_rejected(self):
        net = LinearNetwork()
        with pytest.raises(SolverError):
            net.add_conductance("a", "b", -1.0)

    def test_negative_resistance_rejected(self):
        net = LinearNetwork()
        with pytest.raises(SolverError):
            net.add_resistor("a", "b", -10.0)

    def test_zero_resistance_acts_as_short(self):
        net = LinearNetwork()
        net.set_voltage("top", 1.0)
        net.set_voltage("gnd", 0.0)
        net.add_resistor("top", "mid", 0.0)
        net.add_resistor("mid", "gnd", 1000.0)
        assert net.solve()["mid"] == pytest.approx(1.0, abs=1e-6)

    def test_self_loop_is_ignored(self):
        net = LinearNetwork()
        net.set_voltage("gnd", 0.0)
        net.add_resistor("a", "a", 100.0)
        net.add_resistor("a", "gnd", 100.0)
        assert net.solve()["a"] == pytest.approx(0.0)

    def test_superposition_of_sources(self):
        # Two current sources into the same node add linearly.
        net = LinearNetwork()
        net.set_voltage("gnd", 0.0)
        net.add_resistor("n", "gnd", 200.0)
        net.add_current("n", 1e-3)
        net.add_current("n", 2e-3)
        assert net.solve()["n"] == pytest.approx(0.6)


class TestResistorString:
    def test_uniform_string_is_linear(self):
        taps = [f"t{i}" for i in range(5)]
        sol = solve_resistor_string(taps, [100.0] * 4, v_top=1.0, v_bottom=0.0)
        for i, tap in enumerate(taps):
            assert sol[tap] == pytest.approx(i / 4)

    def test_shorted_segment_shifts_taps(self):
        taps = [f"t{i}" for i in range(5)]
        resistances = [100.0, 100.0, 0.001, 100.0]
        sol = solve_resistor_string(taps, resistances, 1.0, 0.0)
        # The shorted segment collapses taps 2 and 3 onto each other.
        assert sol["t3"] == pytest.approx(sol["t2"], abs=1e-4)

    def test_extra_edge_short_between_taps(self):
        taps = [f"t{i}" for i in range(5)]
        sol = solve_resistor_string(taps, [100.0] * 4, 1.0, 0.0,
                                    extra_edges=[("t1", "t3", 0.001)])
        assert sol["t1"] == pytest.approx(sol["t3"], abs=1e-4)

    def test_wrong_tap_count_raises(self):
        with pytest.raises(SolverError):
            solve_resistor_string(["a", "b"], [1.0, 2.0], 1.0, 0.0)

    @given(st.lists(st.floats(min_value=10.0, max_value=1e5),
                    min_size=2, max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_taps_monotonic_for_positive_resistances(self, resistances):
        """Property: with positive segment resistances the taps are monotonic."""
        taps = [f"t{i}" for i in range(len(resistances) + 1)]
        sol = solve_resistor_string(taps, resistances, v_top=1.2, v_bottom=0.0)
        values = [sol[t] for t in taps]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        assert values[0] == pytest.approx(0.0)
        assert values[-1] == pytest.approx(1.2)

    @given(st.floats(min_value=0.1, max_value=10.0),
           st.floats(min_value=10.0, max_value=10000.0))
    @settings(max_examples=40, deadline=None)
    def test_divider_ratio_property(self, ratio, r_bottom):
        """Property: a two-resistor divider follows the ratio formula."""
        net = LinearNetwork()
        net.set_voltage("top", 1.0)
        net.set_voltage("gnd", 0.0)
        net.add_resistor("top", "mid", ratio * r_bottom)
        net.add_resistor("mid", "gnd", r_bottom)
        assert net.solve()["mid"] == pytest.approx(1.0 / (1.0 + ratio),
                                                   rel=1e-6)
