"""Tests for repro.circuit.units."""

import math

import pytest

from repro.circuit import units


class TestConstants:
    def test_supply_is_positive(self):
        assert units.VDD > 0

    def test_common_mode_is_mid_rail(self):
        assert units.VCM_NOMINAL == pytest.approx(units.VDD / 2)

    def test_clock_frequency_matches_paper(self):
        assert units.F_CLK == pytest.approx(156e6)

    def test_short_resistance_matches_paper(self):
        assert units.SHORT_RESISTANCE == pytest.approx(10.0)

    def test_passive_deviation_is_fifty_percent(self):
        assert units.PASSIVE_DEVIATION == pytest.approx(0.50)

    def test_reference_levels_count(self):
        assert units.N_REF_LEVELS == 33

    def test_adc_resolution(self):
        assert units.ADC_BITS == 10


class TestDb:
    def test_db_of_unity_is_zero(self):
        assert units.db(1.0) == pytest.approx(0.0)

    def test_db_of_ten_is_twenty(self):
        assert units.db(10.0) == pytest.approx(20.0)

    def test_db_rejects_non_positive(self):
        with pytest.raises(ValueError):
            units.db(0.0)
        with pytest.raises(ValueError):
            units.db(-1.0)

    def test_from_db_round_trips(self):
        for value in (0.01, 0.5, 1.0, 3.0, 250.0):
            assert units.from_db(units.db(value)) == pytest.approx(value)


class TestLsbSize:
    def test_ten_bit_lsb(self):
        assert units.lsb_size(1.024, 10) == pytest.approx(0.001)

    def test_default_bits(self):
        assert units.lsb_size(1.0) == pytest.approx(1.0 / 1024)

    def test_rejects_non_positive_bits(self):
        with pytest.raises(ValueError):
            units.lsb_size(1.0, 0)


class TestParallel:
    def test_two_equal_resistors(self):
        assert units.parallel(100.0, 100.0) == pytest.approx(50.0)

    def test_single_resistor(self):
        assert units.parallel(470.0) == pytest.approx(470.0)

    def test_zero_shorts_the_combination(self):
        assert units.parallel(100.0, 0.0, 50.0) == 0.0

    def test_three_resistors(self):
        expected = 1.0 / (1 / 10.0 + 1 / 20.0 + 1 / 40.0)
        assert units.parallel(10.0, 20.0, 40.0) == pytest.approx(expected)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            units.parallel(-5.0)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            units.parallel()
