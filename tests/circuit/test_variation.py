"""Tests for process-variation modelling (repro.circuit.variation)."""

import numpy as np
import pytest

from repro.circuit import (GaussianParameter, Netlist, SimulationError,
                           VariationSpec, reset_variation, vary_netlist)


def passive_netlist():
    nl = Netlist("passives")
    for i in range(20):
        nl.add_resistor(f"r{i}", f"a{i}", f"b{i}", 1000.0)
        nl.add_capacitor(f"c{i}", f"x{i}", f"y{i}", 1e-12)
    nl.add_nmos("m0", "d", "g", "s")
    return nl


class TestVariationSpec:
    def test_defaults_are_small_fractions(self):
        spec = VariationSpec()
        assert 0 < spec.resistor_global_sigma < 0.1
        assert 0 < spec.capacitor_global_sigma < 0.1

    def test_negative_sigma_rejected(self):
        with pytest.raises(SimulationError):
            VariationSpec(resistor_global_sigma=-0.1)


class TestGaussianParameter:
    def test_zero_sigma_returns_nominal(self):
        param = GaussianParameter("offset", 0.01, 0.0)
        assert param.sample(np.random.default_rng(0)) == 0.01

    def test_negative_sigma_rejected(self):
        with pytest.raises(SimulationError):
            GaussianParameter("bad", 0.0, -1.0)

    def test_samples_have_requested_statistics(self):
        param = GaussianParameter("x", 1.0, 0.1)
        rng = np.random.default_rng(7)
        values = np.array([param.sample(rng) for _ in range(4000)])
        assert values.mean() == pytest.approx(1.0, abs=0.01)
        assert values.std() == pytest.approx(0.1, abs=0.01)

    def test_same_seed_reproducible(self):
        param = GaussianParameter("x", 0.0, 1.0)
        a = param.sample(np.random.default_rng(11))
        b = param.sample(np.random.default_rng(11))
        assert a == b


class TestVaryNetlist:
    def test_scales_only_passives(self):
        nl = passive_netlist()
        scales = vary_netlist(nl, np.random.default_rng(1))
        assert set(scales) == {d.name for d in nl
                               if d.kind.is_passive}
        assert nl.device("m0").defect.is_clean

    def test_scales_are_near_unity(self):
        nl = passive_netlist()
        scales = vary_netlist(nl, np.random.default_rng(2))
        assert all(0.8 < s < 1.2 for s in scales.values())

    def test_defective_device_untouched(self):
        nl = passive_netlist()
        nl.device("r0").defect.shorted_terminals = ("p", "n")
        scales = vary_netlist(nl, np.random.default_rng(3))
        assert "r0" not in scales

    def test_reset_variation_restores_nominal(self):
        nl = passive_netlist()
        vary_netlist(nl, np.random.default_rng(4))
        reset_variation(nl)
        assert all(d.effective_value() == pytest.approx(d.value)
                   for d in nl if d.kind.is_passive)

    def test_reset_keeps_real_defects(self):
        nl = passive_netlist()
        nl.device("c0").defect.open_terminal = "p"
        vary_netlist(nl, np.random.default_rng(5))
        reset_variation(nl)
        assert nl.device("c0").is_open("p")

    def test_same_seed_same_draw(self):
        nl_a, nl_b = passive_netlist(), passive_netlist()
        scales_a = vary_netlist(nl_a, np.random.default_rng(9))
        scales_b = vary_netlist(nl_b, np.random.default_rng(9))
        assert scales_a == scales_b

    def test_resistors_share_global_component(self):
        """Resistor scales should be strongly correlated (global shift)."""
        spec = VariationSpec(resistor_global_sigma=0.05,
                             resistor_mismatch_sigma=0.0001)
        nl = passive_netlist()
        scales = vary_netlist(nl, np.random.default_rng(6), spec)
        r_scales = [v for k, v in scales.items() if k.startswith("r")]
        assert max(r_scales) - min(r_scales) < 0.01
