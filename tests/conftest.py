"""Shared fixtures for the SymBIST reproduction test suite.

The expensive fixtures (window calibration, defect universe) are session
scoped so the several hundred tests stay fast; every random draw is seeded so
the suite is deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.core import (SymBistStimulus, WindowCalibration, build_invariances,
                        calibrate_windows)
from repro.defects import DefectCampaign, LikelihoodModel, build_defect_universe


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic random generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def adc() -> SarAdc:
    """A fresh, defect-free, nominal-corner ADC instance."""
    return SarAdc()


@pytest.fixture(scope="session")
def calibration() -> WindowCalibration:
    """Session-wide window calibration (small but deterministic Monte Carlo)."""
    return calibrate_windows(n_monte_carlo=20,
                             rng=np.random.default_rng(2024),
                             keep_pools=True)


@pytest.fixture(scope="session")
def deltas(calibration: WindowCalibration) -> dict:
    """Calibrated window half-widths keyed by invariance name."""
    return dict(calibration.deltas)


@pytest.fixture(scope="session")
def invariances():
    """The six standard invariances."""
    return build_invariances()


@pytest.fixture
def stimulus() -> SymBistStimulus:
    """The standard SymBIST stimulus (DC FD input + 5-bit counter)."""
    return SymBistStimulus()


@pytest.fixture(scope="session")
def session_universe():
    """Defect universe of a reference IP instance (session scoped)."""
    reference_adc = SarAdc()
    return build_defect_universe(reference_adc.build_hierarchy(),
                                 LikelihoodModel())


@pytest.fixture
def campaign(deltas) -> DefectCampaign:
    """A defect campaign bound to a fresh ADC with calibrated windows."""
    return DefectCampaign(adc=SarAdc(), deltas=deltas)
