"""Tests for the Monte Carlo window calibration (repro.core.calibration)."""

import numpy as np
import pytest

from repro.circuit import CalibrationError
from repro.core import (DEFAULT_DELTA_FLOORS, GENERIC_DELTA_FLOOR,
                        WindowComparator, calibrate_windows,
                        collect_defect_free_residuals)


class TestCalibration:
    def test_calibration_covers_all_invariances(self, calibration):
        names = {"msb_sum", "lsb_sum", "dac_sum", "preamp_cm", "sign",
                 "latch_sum"}
        assert set(calibration.deltas) == names
        assert set(calibration.sigmas) == names

    def test_k_factor_recorded(self, calibration):
        assert calibration.k == 5.0

    def test_deltas_respect_k_sigma_plus_mean(self, calibration):
        for name, delta in calibration.deltas.items():
            floor = DEFAULT_DELTA_FLOORS.get(name, GENERIC_DELTA_FLOOR)
            expected = max(calibration.k * calibration.sigmas[name]
                           + abs(calibration.means[name]), floor)
            assert delta == pytest.approx(expected)

    def test_discrete_invariances_use_floors(self, calibration):
        assert calibration.sigmas["sign"] == 0.0
        assert calibration.deltas["sign"] == DEFAULT_DELTA_FLOORS["sign"]
        assert calibration.deltas["latch_sum"] == DEFAULT_DELTA_FLOORS["latch_sum"]

    def test_continuous_invariances_have_positive_sigma(self, calibration):
        for name in ("msb_sum", "lsb_sum", "dac_sum", "preamp_cm"):
            assert calibration.sigmas[name] > 0.0

    def test_build_checkers(self, calibration):
        checkers = calibration.build_checkers()
        assert len(checkers) == 6
        assert all(isinstance(c, WindowComparator) for c in checkers)

    def test_delta_lookup_raises_for_unknown(self, calibration):
        with pytest.raises(CalibrationError):
            calibration.delta("bogus")

    def test_scaled_rebuilds_windows_without_new_monte_carlo(self, calibration):
        smaller = calibration.scaled(3.0)
        assert smaller.k == 3.0
        assert smaller.deltas["dac_sum"] < calibration.deltas["dac_sum"]
        assert smaller.sigmas == calibration.sigmas

    def test_keep_pools_controls_memory(self, calibration):
        assert calibration.residual_pools  # session fixture keeps pools
        light = calibrate_windows(n_monte_carlo=3,
                                  rng=np.random.default_rng(5))
        assert light.residual_pools == {}

    def test_same_seed_is_reproducible(self):
        cal_a = calibrate_windows(n_monte_carlo=4, rng=np.random.default_rng(9))
        cal_b = calibrate_windows(n_monte_carlo=4, rng=np.random.default_rng(9))
        assert cal_a.deltas == cal_b.deltas

    def test_invalid_arguments_rejected(self):
        with pytest.raises(CalibrationError):
            calibrate_windows(n_monte_carlo=0)
        with pytest.raises(CalibrationError):
            calibrate_windows(k=0.0, n_monte_carlo=2)

    def test_custom_floor_override(self):
        cal = calibrate_windows(n_monte_carlo=2, rng=np.random.default_rng(3),
                                delta_floors={"sign": 0.9})
        assert cal.deltas["sign"] == pytest.approx(0.9)


class TestResidualPools:
    def test_pool_sizes(self, calibration):
        for name, pool in calibration.residual_pools.items():
            assert len(pool) == calibration.n_samples * 32

    def test_pools_centered_near_zero(self, calibration):
        for name in ("msb_sum", "lsb_sum", "dac_sum"):
            values = np.asarray(calibration.residual_pools[name])
            assert abs(values.mean()) < 0.02

    def test_collect_requires_positive_samples(self):
        with pytest.raises(CalibrationError):
            collect_defect_free_residuals(n_monte_carlo=0)
