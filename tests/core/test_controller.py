"""Tests for the SymBIST controller (repro.core.controller)."""

import pytest

from repro.adc import SarAdc
from repro.circuit import BistConfigurationError, GlitchModel
from repro.core import (CheckingMode, SymBistController, SymBistStimulus,
                        WindowComparator, build_invariances, run_symbist)


def make_controller(adc, deltas, **kwargs):
    checkers = [WindowComparator(name=n, delta=d) for n, d in deltas.items()]
    return SymBistController(adc, checkers, **kwargs)


class TestDefectFreeRun:
    def test_passes_and_reports_paper_test_time(self, adc, deltas):
        result = make_controller(adc, deltas).run()
        assert result.passed and not result.detected
        assert result.cycles_scheduled == 192
        assert result.cycles_run == 192
        assert result.test_time * 1e6 == pytest.approx(1.23, abs=0.01)
        assert result.first_detection is None
        assert result.failing_invariances == []

    def test_settled_residuals_one_per_code(self, adc, deltas):
        result = make_controller(adc, deltas).run()
        assert set(result.settled_residuals) == set(deltas)
        assert all(len(v) == 32 for v in result.settled_residuals.values())

    def test_parallel_mode_runs_single_pass(self, adc, deltas):
        result = make_controller(adc, deltas, mode=CheckingMode.PARALLEL).run()
        assert result.cycles_scheduled == 32
        assert result.passed

    def test_glitch_model_records_intra_cycle_samples(self, adc, deltas):
        controller = make_controller(adc, deltas,
                                     glitch_model=GlitchModel(samples_per_cycle=4))
        result = controller.run()
        assert len(result.waveforms["dac_sum"]) == 4 * 32

    def test_run_symbist_wrapper(self, adc, deltas):
        assert run_symbist(adc, deltas).passed


class TestDefectDetection:
    def test_vcm_defect_detected_by_dac_sum(self, adc, deltas):
        adc.sarcell.vcm_generator.netlist.device("r_top").defect.value_scale = 1.5
        result = make_controller(adc, deltas).run()
        adc.clear_defects()
        assert result.detected
        assert "dac_sum" in result.failing_invariances

    def test_ladder_defect_detected_by_subdac_sums(self, adc, deltas):
        adc.reference_buffer.netlist.device("rlad_08").defect.shorted_terminals = \
            ("p", "n")
        result = make_controller(adc, deltas).run()
        adc.clear_defects()
        assert result.detected
        assert {"msb_sum", "lsb_sum"} & set(result.failing_invariances)

    def test_stop_on_detection_shortens_run(self, adc, deltas):
        adc.sarcell.vcm_generator.netlist.device("r_top").defect.value_scale = 1.5
        full = make_controller(adc, deltas).run()
        stopped = make_controller(adc, deltas, stop_on_detection=True).run()
        adc.clear_defects()
        assert stopped.detected and full.detected
        assert stopped.cycles_run < full.cycles_run
        assert stopped.test_time < full.test_time

    def test_first_detection_identifies_invariance_and_cycle(self, adc, deltas):
        adc.sarcell.dac.sc_array.netlist.device("cm_p").defect.value_scale = 1.5
        result = make_controller(adc, deltas).run()
        adc.clear_defects()
        assert result.detected
        name, cycle = result.first_detection
        assert name in result.failing_invariances
        assert 0 <= cycle < 32

    def test_sequential_order_determines_first_detection(self, adc, deltas):
        """With sequential checking the schedule walks invariances in order,
        so the reported first detection belongs to the earliest failing
        invariance in declaration order."""
        adc.reference_buffer.netlist.device("rlad_08").defect.shorted_terminals = \
            ("p", "n")
        result = make_controller(adc, deltas).run()
        adc.clear_defects()
        names = [inv.name for inv in build_invariances()]
        failing_positions = [names.index(n) for n in result.failing_invariances]
        assert names.index(result.first_detection[0]) == min(failing_positions)

    def test_worst_residuals_reported(self, adc, deltas):
        result = make_controller(adc, deltas).run()
        worst = result.worst_residuals()
        assert set(worst) == set(deltas)
        assert all(v >= 0 for v in worst.values())


class TestConfigurationErrors:
    def test_missing_checker_rejected(self, adc, deltas):
        incomplete = {k: v for k, v in deltas.items() if k != "dac_sum"}
        checkers = [WindowComparator(name=n, delta=d)
                    for n, d in incomplete.items()]
        with pytest.raises(BistConfigurationError):
            SymBistController(adc, checkers)

    def test_extra_checkers_are_ignored(self, adc, deltas):
        checkers = [WindowComparator(name=n, delta=d) for n, d in deltas.items()]
        checkers.append(WindowComparator(name="unused", delta=1.0))
        controller = SymBistController(adc, checkers)
        assert set(controller.checkers) == set(deltas)

    def test_custom_stimulus(self, adc, deltas):
        stim = SymBistStimulus(input_diff=0.1, repeats=2)
        result = make_controller(adc, deltas, stimulus=stim).run()
        assert result.cycles_scheduled == 6 * 64
        assert result.passed
