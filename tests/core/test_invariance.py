"""Tests for the SymBIST invariance definitions (repro.core.invariance)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import BistConfigurationError, VCM2_NOMINAL, VCM_NOMINAL, VDD
from repro.core import (SIGN_DEADBAND, SIGN_VIOLATION_MAGNITUDE,
                        build_invariances, evaluate_all, invariance_by_name)


def nominal_signals(code_fraction=0.3):
    """A consistent, defect-free signal bundle."""
    vref32 = 1.2
    m_p = code_fraction * vref32
    lin_diff = 0.2
    return {
        "M+": m_p, "M-": vref32 - m_p,
        "L+": m_p, "L-": vref32 - m_p,
        "DAC+": VCM_NOMINAL + 0.1, "DAC-": VCM_NOMINAL - 0.1,
        "LIN+": VCM2_NOMINAL + lin_diff / 2, "LIN-": VCM2_NOMINAL - lin_diff / 2,
        "Q+": VDD, "Q-": 0.0,
        "VREF32": vref32,
    }


class TestStandardSet:
    def test_six_invariances_in_paper_order(self, invariances):
        assert [inv.name for inv in invariances] == [
            "msb_sum", "lsb_sum", "dac_sum", "preamp_cm", "sign", "latch_sum"]

    def test_each_has_equation_reference(self, invariances):
        assert all(inv.paper_equation.startswith("Eq.") for inv in invariances)

    def test_lookup_by_name(self):
        assert invariance_by_name("dac_sum").name == "dac_sum"
        with pytest.raises(BistConfigurationError):
            invariance_by_name("not_an_invariance")

    def test_covered_blocks_span_all_ams_blocks(self, invariances):
        covered = set()
        for inv in invariances:
            covered.update(inv.covered_blocks)
        expected = {"bandgap", "reference_buffer", "subdac1", "subdac2",
                    "sc_array", "vcm_generator", "preamplifier",
                    "comparator_latch", "rs_latch", "offset_compensation"}
        assert expected <= covered


class TestResiduals:
    def test_all_residuals_zero_for_nominal_signals(self, invariances):
        residuals = evaluate_all(invariances, nominal_signals())
        assert all(abs(v) < 1e-9 for v in residuals.values())

    def test_msb_sum_detects_asymmetry(self):
        signals = nominal_signals()
        signals["M+"] += 0.05
        assert invariance_by_name("msb_sum").evaluate(signals) == pytest.approx(0.05)

    def test_dac_sum_detects_common_mode_shift(self):
        signals = nominal_signals()
        signals["DAC+"] += 0.08
        signals["DAC-"] += 0.08
        assert invariance_by_name("dac_sum").evaluate(signals) == pytest.approx(0.16)

    def test_dac_sum_ignores_pure_differential(self):
        signals = nominal_signals()
        signals["DAC+"] += 0.08
        signals["DAC-"] -= 0.08
        assert invariance_by_name("dac_sum").evaluate(signals) == pytest.approx(0.0)

    def test_preamp_cm_detects_railed_output(self):
        signals = nominal_signals()
        signals["LIN+"] = VDD
        assert abs(invariance_by_name("preamp_cm").evaluate(signals)) > 0.1

    def test_latch_sum_detects_both_high(self):
        signals = nominal_signals()
        signals["Q-"] = VDD
        assert invariance_by_name("latch_sum").evaluate(signals) == pytest.approx(VDD)

    def test_sign_consistency_pass(self):
        assert invariance_by_name("sign").evaluate(nominal_signals()) == 0.0

    def test_sign_consistency_violation(self):
        signals = nominal_signals()
        signals["Q+"], signals["Q-"] = 0.0, VDD  # decision opposite to LIN
        value = invariance_by_name("sign").evaluate(signals)
        assert abs(value) == pytest.approx(SIGN_VIOLATION_MAGNITUDE)

    def test_sign_deadband_masks_metastable_cycles(self):
        signals = nominal_signals()
        signals["LIN+"] = VCM2_NOMINAL + SIGN_DEADBAND / 4
        signals["LIN-"] = VCM2_NOMINAL - SIGN_DEADBAND / 4
        signals["Q+"], signals["Q-"] = 0.0, VDD
        assert invariance_by_name("sign").evaluate(signals) == 0.0

    def test_missing_signal_raises(self, invariances):
        with pytest.raises(BistConfigurationError):
            invariances[0].evaluate({"M+": 1.0})

    @given(st.floats(min_value=0.0, max_value=1.2),
           st.floats(min_value=0.0, max_value=1.2))
    @settings(max_examples=50, deadline=None)
    def test_msb_sum_is_symmetric_in_its_arguments(self, a, b):
        """Property: the residual only depends on the sum M+ + M-."""
        signals = nominal_signals()
        signals["M+"], signals["M-"] = a, b
        forward = invariance_by_name("msb_sum").evaluate(signals)
        signals["M+"], signals["M-"] = b, a
        swapped = invariance_by_name("msb_sum").evaluate(signals)
        assert forward == pytest.approx(swapped)
