"""Tests for reporting helpers (repro.core.report)."""

import pytest

from repro.core import (format_confidence, format_percent, format_table,
                        run_symbist, summarize_symbist_result, waveform_csv)


class TestFormatting:
    def test_format_percent(self):
        assert format_percent(0.8696) == "86.96%"
        assert format_percent(1.0, decimals=0) == "100%"

    def test_format_confidence_with_interval(self):
        assert format_confidence(0.8696, 0.0367) == "86.96% +/- 3.67%"

    def test_format_confidence_without_interval(self):
        assert format_confidence(0.942, None) == "94.20%"

    def test_format_table_alignment(self):
        table = format_table(["block", "coverage"],
                             [["bandgap", 0.9422], ["sc_array", 0.977]],
                             title="Table I")
        lines = table.splitlines()
        assert lines[0] == "Table I"
        assert "block" in lines[1] and "coverage" in lines[1]
        assert len(lines) == 5
        # every row has the same rendered width
        assert len({len(line) for line in lines[2:]}) == 1

    def test_format_table_handles_mixed_types(self):
        table = format_table(["a", "b"], [[1, "x"], [2.5, None]])
        assert "None" in table


class TestResultSummaries:
    def test_summary_of_passing_run(self, adc, deltas):
        result = run_symbist(adc, deltas)
        text = summarize_symbist_result(result)
        assert "PASS" in text
        assert "sequential" in text
        assert "dac_sum" in text

    def test_summary_of_failing_run_names_detection(self, adc, deltas):
        adc.sarcell.vcm_generator.netlist.device("r_top").defect.value_scale = 1.5
        result = run_symbist(adc, deltas)
        adc.clear_defects()
        text = summarize_symbist_result(result)
        assert "FAIL" in text
        assert "first detection" in text

    def test_waveform_csv_shape(self, adc, deltas):
        result = run_symbist(adc, deltas)
        csv = waveform_csv(result, "dac_sum")
        lines = csv.strip().splitlines()
        assert lines[0] == "time_s,residual_v"
        assert len(lines) == 33  # header + one settled sample per counter code
