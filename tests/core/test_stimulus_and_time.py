"""Tests for the SymBIST stimulus and the test-time / area models."""

import pytest

from repro.circuit import BistConfigurationError, F_CLK, VCM_NOMINAL
from repro.core import (CheckingMode, DEFAULT_DIGITAL_GATES, SymBistStimulus,
                        TestTimeModel, area_overhead, ip_analog_area,
                        symbist_infrastructure_area)


class TestStimulus:
    def test_default_matches_paper(self):
        stim = SymBistStimulus()
        assert stim.counter_bits == 5
        assert stim.n_codes == 32
        assert stim.n_cycles == 32
        assert stim.input_cm == pytest.approx(VCM_NOMINAL)

    def test_counter_sweeps_all_codes(self):
        stim = SymBistStimulus()
        codes = [stim.code_for_cycle(c) for c in range(stim.n_cycles)]
        assert sorted(codes) == list(range(32))

    def test_repeats_replay_the_sequence(self):
        stim = SymBistStimulus(repeats=2)
        assert stim.n_cycles == 64
        assert stim.code_for_cycle(33) == 1

    def test_dc_input_is_constant(self):
        stim = SymBistStimulus(input_diff=0.3)
        bundles = stim.bundles()
        assert all(b["in_p"] - b["in_m"] == pytest.approx(0.3) for b in bundles)
        assert len({b["in_p"] for b in bundles}) == 1

    def test_out_of_range_cycle_rejected(self):
        with pytest.raises(BistConfigurationError):
            SymBistStimulus().code_for_cycle(32)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(BistConfigurationError):
            SymBistStimulus(counter_bits=0)
        with pytest.raises(BistConfigurationError):
            SymBistStimulus(repeats=0)

    def test_sequence_stimulus_adapter(self):
        stim = SymBistStimulus()
        seq = stim.as_sequence_stimulus()
        assert len(seq) == 32
        assert seq.inputs_for_cycle(7)["code"] == 7.0

    def test_iteration_yields_all_bundles(self):
        stim = SymBistStimulus()
        assert len(list(stim)) == 32


class TestTestTime:
    def test_paper_sequential_test_time(self):
        """Section IV-5: 6 * 2^5 / 156 MHz = 1.23 us."""
        model = TestTimeModel()
        assert model.test_time(CheckingMode.SEQUENTIAL) * 1e6 == pytest.approx(
            1.23, abs=0.01)

    def test_paper_ratio_to_conversion_time(self):
        """Section IV-5: the test takes about 16x one conversion."""
        model = TestTimeModel()
        ratio = model.test_time_in_conversions(CheckingMode.SEQUENTIAL)
        assert ratio == pytest.approx(16.0, abs=0.1)

    def test_parallel_checking_is_six_times_faster(self):
        model = TestTimeModel()
        assert model.test_time(CheckingMode.SEQUENTIAL) == pytest.approx(
            6 * model.test_time(CheckingMode.PARALLEL))

    def test_cycle_counts(self):
        model = TestTimeModel()
        assert model.cycles_per_pass == 32
        assert model.test_cycles(CheckingMode.SEQUENTIAL) == 192
        assert model.test_cycles(CheckingMode.PARALLEL) == 32

    def test_conversion_time_uses_12_cycles(self):
        model = TestTimeModel()
        assert model.conversion_time == pytest.approx(12 / F_CLK)

    def test_functional_test_time_and_speedup(self):
        model = TestTimeModel()
        functional = model.functional_test_time(4096)
        assert functional > 100 * model.test_time()
        assert model.speedup_vs_functional(4096) == pytest.approx(
            functional / model.test_time())

    def test_invalid_configuration_rejected(self):
        with pytest.raises(BistConfigurationError):
            TestTimeModel(n_invariances=0)
        with pytest.raises(BistConfigurationError):
            TestTimeModel(clock_frequency=0.0)
        with pytest.raises(BistConfigurationError):
            TestTimeModel().functional_test_time(0)


class TestAreaModel:
    def test_overhead_below_five_percent(self, adc):
        """Section IV-4: the SymBIST area overhead is estimated below 5 %."""
        report = area_overhead(adc, mode=CheckingMode.SEQUENTIAL)
        assert 0.0 < report.overhead_percent < 5.0

    def test_parallel_checkers_cost_more_area(self, adc):
        sequential = area_overhead(adc, mode=CheckingMode.SEQUENTIAL)
        parallel = area_overhead(adc, mode=CheckingMode.PARALLEL)
        assert parallel.bist_total_ge > sequential.bist_total_ge
        assert parallel.overhead_percent > sequential.overhead_percent

    def test_ip_area_positive_and_dominated_by_analog(self, adc):
        analog = ip_analog_area(adc)
        assert analog > DEFAULT_DIGITAL_GATES

    def test_infrastructure_breakdown_keys(self):
        breakdown = symbist_infrastructure_area()
        assert set(breakdown) == {"counter", "window_comparators",
                                  "checker_multiplexing", "tap_buffers",
                                  "control_fsm"}
        assert all(v > 0 for v in breakdown.values())

    def test_sequential_mode_uses_single_comparator(self):
        seq = symbist_infrastructure_area(mode=CheckingMode.SEQUENTIAL)
        par = symbist_infrastructure_area(mode=CheckingMode.PARALLEL)
        assert par["window_comparators"] == pytest.approx(
            6 * seq["window_comparators"])

    def test_invalid_parameters_rejected(self):
        with pytest.raises(BistConfigurationError):
            symbist_infrastructure_area(n_invariances=0)
