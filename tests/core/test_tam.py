"""Tests for the 2-pin test access mechanism (repro.core.tam)."""

import pytest

from repro.adc import SarAdc
from repro.circuit import BistConfigurationError
from repro.core import (INSTRUCTION_BITS, RESPONSE_BITS, SymBistTam,
                        TamInstruction)


def _bits_to_int(bits):
    return sum(b << i for i, b in enumerate(bits))


class TestProtocol:
    def test_run_all_on_good_part(self, adc, deltas):
        tam = SymBistTam(adc, deltas)
        response = tam.shift_instruction(TamInstruction.RUN_ALL)
        assert len(response) == RESPONSE_BITS
        assert _bits_to_int(response) == 1  # pass

    def test_status_before_any_run_is_fail(self, adc, deltas):
        tam = SymBistTam(adc, deltas)
        assert _bits_to_int(
            tam.shift_instruction(TamInstruction.READ_STATUS)) == 0

    def test_full_session_on_defective_part(self, deltas):
        adc = SarAdc()
        adc.sarcell.vcm_generator.netlist.device("r_top").defect.value_scale = 1.5
        tam = SymBistTam(adc, deltas)
        report = tam.run_and_report()
        adc.clear_defects()
        assert report["passed"] is False
        assert "dac_sum" in report["failing_invariances"]
        assert report["first_detection_cycle"] is not None
        assert report["tck_cycles"] > 0
        assert report["session_time"] > 0

    def test_full_session_on_good_part(self, adc, deltas):
        report = SymBistTam(adc, deltas).run_and_report()
        assert report["passed"] is True
        assert report["failing_invariances"] == []
        assert report["first_detection_cycle"] is None

    def test_run_single_invariance(self, deltas):
        adc = SarAdc()
        adc.reference_buffer.netlist.device("rlad_10").defect.shorted_terminals = \
            ("p", "n")
        tam = SymBistTam(adc, deltas)
        # Invariance 0 is msb_sum: it must fail for a ladder defect.
        fail = _bits_to_int(
            tam.shift_instruction(TamInstruction.RUN_SINGLE_BASE + 0))
        # Invariance 5 is latch_sum: it is unaffected by a ladder defect.
        ok = _bits_to_int(
            tam.shift_instruction(TamInstruction.RUN_SINGLE_BASE + 5))
        adc.clear_defects()
        assert fail == 0 and ok == 1

    def test_fail_map_encodes_one_bit_per_invariance(self, deltas):
        adc = SarAdc()
        adc.reference_buffer.netlist.device("rlad_10").defect.shorted_terminals = \
            ("p", "n")
        tam = SymBistTam(adc, deltas)
        tam.shift_instruction(TamInstruction.RUN_ALL)
        fail_map = _bits_to_int(
            tam.shift_instruction(TamInstruction.READ_FAIL_MAP))
        adc.clear_defects()
        assert fail_map & 0b000011  # msb_sum and/or lsb_sum bits set
        assert not fail_map & 0b100000  # latch_sum bit clear

    def test_idle_and_unknown_opcodes(self, adc, deltas):
        tam = SymBistTam(adc, deltas)
        assert _bits_to_int(tam.shift_instruction(TamInstruction.IDLE)) == 0
        with pytest.raises(BistConfigurationError):
            tam.shift_instruction(0x7F)
        with pytest.raises(BistConfigurationError):
            tam.shift_instruction(-1)

    def test_session_accounts_shift_and_execute_cycles(self, adc, deltas):
        tam = SymBistTam(adc, deltas)
        tam.shift_instruction(TamInstruction.READ_STATUS)
        shift_only = tam.session.tck_cycles
        assert shift_only == INSTRUCTION_BITS + RESPONSE_BITS
        tam.shift_instruction(TamInstruction.RUN_ALL)
        assert tam.session.tck_cycles >= shift_only + 192

    def test_missing_delta_rejected(self, adc, deltas):
        incomplete = {k: v for k, v in deltas.items() if k != "sign"}
        with pytest.raises(BistConfigurationError):
            SymBistTam(adc, incomplete)
