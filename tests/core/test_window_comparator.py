"""Tests for the clocked window comparator (repro.core.window_comparator)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import BistConfigurationError
from repro.core import WindowComparator, build_checkers


class TestConstruction:
    def test_positive_delta_required(self):
        with pytest.raises(BistConfigurationError):
            WindowComparator(name="x", delta=0.0)
        with pytest.raises(BistConfigurationError):
            WindowComparator(name="x", delta=-1.0)

    def test_negative_hysteresis_rejected(self):
        with pytest.raises(BistConfigurationError):
            WindowComparator(name="x", delta=1.0, hysteresis=-0.1)

    def test_bounds(self):
        checker = WindowComparator(name="x", delta=0.2, center=1.0, offset=0.1)
        assert checker.lower_bound == pytest.approx(0.9)
        assert checker.upper_bound == pytest.approx(1.3)

    def test_build_checkers_from_delta_table(self):
        checkers = build_checkers({"a": 0.1, "b": 0.2}, offsets={"b": 0.05})
        assert len(checkers) == 2
        by_name = {c.name: c for c in checkers}
        assert by_name["b"].offset == pytest.approx(0.05)


class TestSingleSample:
    def test_inside_window_passes(self):
        checker = WindowComparator(name="x", delta=0.1)
        assert checker.is_within_window(0.05)
        assert checker.is_within_window(-0.1)

    def test_outside_window_fails(self):
        checker = WindowComparator(name="x", delta=0.1)
        assert not checker.is_within_window(0.11)
        assert not checker.is_within_window(-0.5)

    def test_offset_shifts_the_window(self):
        checker = WindowComparator(name="x", delta=0.1, offset=0.2)
        assert checker.is_within_window(0.25)
        assert not checker.is_within_window(0.0)


class TestSampleSequences:
    def test_all_inside_passes(self):
        checker = WindowComparator(name="x", delta=0.1)
        result = checker.check_samples([0.0, 0.05, -0.08, 0.02])
        assert result.passed
        assert result.first_violation_cycle is None
        assert result.worst_residual == pytest.approx(0.08)

    def test_violation_records_cycle_indices(self):
        checker = WindowComparator(name="x", delta=0.1)
        result = checker.check_samples([0.0, 0.2, 0.05, -0.3])
        assert not result.passed
        assert result.violations == [1, 3]
        assert result.first_violation_cycle == 1

    def test_empty_sequence_passes(self):
        checker = WindowComparator(name="x", delta=0.1)
        assert checker.check_samples([]).passed

    def test_result_metadata(self):
        checker = WindowComparator(name="dac_sum", delta=0.05)
        result = checker.check_samples([0.0, 0.1])
        assert result.name == "dac_sum"
        assert result.delta == pytest.approx(0.05)
        assert result.n_cycles == 2

    def test_hysteresis_does_not_mask_first_violation(self):
        checker = WindowComparator(name="x", delta=0.1, hysteresis=0.02)
        result = checker.check_samples([0.0, 0.15, 0.0])
        assert result.first_violation_cycle == 1

    @given(st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=1,
                    max_size=50),
           st.floats(min_value=0.01, max_value=0.5))
    @settings(max_examples=60, deadline=None)
    def test_pass_iff_all_samples_inside(self, samples, delta):
        """Property: the run passes exactly when every |sample| <= delta."""
        checker = WindowComparator(name="p", delta=delta)
        result = checker.check_samples(samples)
        assert result.passed == all(abs(s) <= delta for s in samples)

    @given(st.lists(st.floats(min_value=-1.0, max_value=1.0), min_size=1,
                    max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_worst_residual_is_max_abs(self, samples):
        checker = WindowComparator(name="p", delta=0.2)
        result = checker.check_samples(samples)
        assert result.worst_residual == pytest.approx(max(abs(s) for s in samples))
