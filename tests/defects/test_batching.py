"""Batched defect evaluation: seed spans, golden trace, locality fallback.

Three pillars of the batching equivalence guarantee:

* the batch seed-span scheme partitions the unbatched per-defect seed
  sequence exactly once, in order, for *any* batch size and block subset
  (property-based, so the partition law is exercised across the space rather
  than at hand-picked sizes);
* the cached defect-free golden trace is bit-identical to a full controller
  re-simulation for every stimulus kind the campaigns use;
* a defect that is not provably local to one pipeline stage falls back to
  the full simulation and produces the exact same record.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adc import SarAdc
from repro.circuit.errors import CoverageError
from repro.core import build_invariances, run_symbist
from repro.core.stimulus import SymBistStimulus
from repro.defects import (DefectCampaign, LOCAL_STAGE, STAGE_DOWNSTREAM,
                           batch_seed_span, batch_spans, build_golden_trace)

BLOCKS = ("bandgap", "subdac1", "sc_array", "rs_latch", "vcm_generator")


# --------------------------------------------------------------- seed spans
class TestBatchSpans:
    @given(n=st.integers(0, 200), batch_size=st.integers(1, 64))
    @settings(max_examples=80, deadline=None)
    def test_spans_partition_range_exactly_once_in_order(self, n, batch_size):
        spans = batch_spans(n, batch_size)
        flat = [i for start, stop in spans for i in range(start, stop)]
        assert flat == list(range(n))

    @given(n=st.integers(1, 200), batch_size=st.integers(1, 64))
    @settings(max_examples=50, deadline=None)
    def test_only_the_final_span_may_be_short(self, n, batch_size):
        spans = batch_spans(n, batch_size)
        assert all(stop - start == batch_size
                   for start, stop in spans[:-1])
        assert 0 < spans[-1][1] - spans[-1][0] <= batch_size

    def test_batch_size_one_degenerates_to_one_span_per_index(self):
        assert batch_spans(4, 1) == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_rejects_invalid_inputs(self):
        with pytest.raises(CoverageError):
            batch_spans(-1, 4)
        with pytest.raises(CoverageError):
            batch_spans(4, 0)
        with pytest.raises(CoverageError):
            batch_seed_span(0, "subdac1", -1, 2)
        with pytest.raises(CoverageError):
            batch_seed_span(0, "subdac1", 3, 2)


def _seed_material(sequences):
    return [(seq.entropy, tuple(seq.spawn_key)) for seq in sequences]


class TestBatchSeedSpans:
    @given(n=st.integers(1, 48), batch_size=st.integers(1, 64),
           root=st.integers(0, 2 ** 31 - 1), block=st.sampled_from(BLOCKS))
    @settings(max_examples=40, deadline=None)
    def test_concatenated_spans_equal_the_unbatched_sequence(
            self, n, batch_size, root, block):
        """The partition law: any batching of a block's defect list owns the
        same per-defect seeds, in the same order, as the unbatched run."""
        unbatched = _seed_material(batch_seed_span(root, block, 0, n))
        concatenated = _seed_material(
            seq for start, stop in batch_spans(n, batch_size)
            for seq in batch_seed_span(root, block, start, stop))
        assert concatenated == unbatched

    @given(n=st.integers(1, 24), batch_size=st.integers(1, 8),
           root=st.integers(0, 2 ** 31 - 1),
           subset=st.permutations(BLOCKS))
    @settings(max_examples=25, deadline=None)
    def test_spans_are_independent_of_block_subset_and_order(
            self, n, batch_size, root, subset):
        """A block's seed spans never depend on which other blocks a sweep
        visits, in what order, or how many of them there are."""
        alone = {block: _seed_material(batch_seed_span(root, block, 0, n))
                 for block in BLOCKS}
        for block in subset[:3]:  # a strict subset, in shuffled order
            swept = _seed_material(
                seq for start, stop in batch_spans(n, batch_size)
                for seq in batch_seed_span(root, block, start, stop))
            assert swept == alone[block]

    @given(n=st.integers(1, 48), batch_size=st.integers(1, 64),
           root=st.integers(0, 2 ** 31 - 1), block=st.sampled_from(BLOCKS))
    @settings(max_examples=25, deadline=None)
    def test_batch_task_seed_is_the_spans_first_child(
            self, n, batch_size, root, block):
        """Engine convention: a batch task's seed is its first member's."""
        children = _seed_material(batch_seed_span(root, block, 0, n))
        for start, stop in batch_spans(n, batch_size):
            span = batch_seed_span(root, block, start, stop)
            assert _seed_material(span)[0] == children[start]


# ------------------------------------------------------------- golden trace
#: Stimulus kinds the campaigns run: the default exhaustive counter ramp,
#: a sine-fit-style large differential input, a servo-style counter replay,
#: and a histogram-style short counter with many repeats.
STIMULI = {
    "ramp": SymBistStimulus(),
    "sine_fit": SymBistStimulus(input_diff=0.25),
    "servo": SymBistStimulus(repeats=2),
    "histogram": SymBistStimulus(counter_bits=4, repeats=3),
}

_UNIT_DELTAS = {inv.name: 1.0 for inv in build_invariances()}


class TestGoldenTrace:
    @pytest.mark.parametrize("kind", sorted(STIMULI))
    def test_golden_residuals_equal_full_resimulation(self, kind):
        """The cached baseline is the full simulation, bit for bit, for
        every stimulus kind."""
        stimulus = STIMULI[kind]
        adc = SarAdc()
        golden = build_golden_trace(adc, stimulus, fingerprint="golden-test")
        result = run_symbist(adc, _UNIT_DELTAS, stimulus=stimulus)
        assert golden.residuals == result.settled_residuals

    @pytest.mark.parametrize("kind", sorted(STIMULI))
    def test_golden_signals_equal_full_resimulation(self, kind):
        stimulus = STIMULI[kind]
        adc = SarAdc()
        golden = build_golden_trace(adc, stimulus, fingerprint="golden-test")
        op = adc.operating_point(input_diff=stimulus.input_diff,
                                 input_cm=stimulus.input_cm)
        adc.sarcell.comparator.rs_latch.reset_state()
        full = [adc.evaluate_test_cycle(stimulus.code_for_cycle(cycle), op)
                for cycle in range(stimulus.n_cycles)]
        assert golden.signals == full

    def test_every_universe_block_is_in_the_locality_map(self, deltas):
        """No silent full-simulation fallback for the shipped ADC: every
        block of the real defect universe is provably local to a stage."""
        campaign = DefectCampaign(adc=SarAdc(), deltas=deltas)
        assert set(campaign.universe.block_paths()) <= set(LOCAL_STAGE)
        assert set(LOCAL_STAGE.values()) <= set(STAGE_DOWNSTREAM)


class TestNonLocalFallback:
    def test_non_local_defect_falls_back_to_full_simulation(
            self, deltas, monkeypatch):
        """A block missing from the locality map is evaluated by the exact
        unbatched path -- same record, just without the golden shortcut."""
        campaign = DefectCampaign(adc=SarAdc(), deltas=deltas)
        defects = [d for d in campaign.universe.defects
                   if d.block_path == "sc_array"][:4]
        expected = [campaign.simulate_defect(d) for d in defects]

        from repro.defects import batching
        monkeypatch.delitem(batching.LOCAL_STAGE, "sc_array")
        evaluator = campaign._batch_evaluator()
        assert all(not evaluator.is_local(d) for d in defects)
        assert all(evaluator.evaluate(d) is None for d in defects)

        batched = campaign.simulate_defect_batch(defects)
        key = lambda r: (r.defect.defect_id, r.detected,
                         r.detecting_invariance, r.detection_cycle,
                         r.cycles_run, r.modeled_sim_time)
        assert [key(r) for r in batched] == [key(r) for r in expected]
