"""Tests for the defect-simulation campaign runner (repro.defects.simulator)."""

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.circuit import CoverageError
from repro.core import CheckingMode
from repro.defects import (DefectCampaign, DefectKind, SamplingPlan,
                           build_defect_universe)


class TestCampaignSetup:
    def test_requires_calibrated_deltas(self):
        with pytest.raises(CoverageError):
            DefectCampaign(deltas=None)

    def test_universe_built_from_adc(self, campaign):
        assert len(campaign.universe) > 1000
        assert campaign.universe.block_paths()[0] == "bandgap"


class TestSingleDefectSimulation:
    def test_detected_defect_record(self, campaign):
        defect = next(d for d in campaign.universe
                      if d.block_path == "vcm_generator"
                      and d.kind is DefectKind.SHORT
                      and d.device_name == "r_top")
        record = campaign.simulate_defect(defect)
        assert record.detected
        assert record.detecting_invariance == "dac_sum"
        assert record.detection_cycle is not None
        assert record.modeled_sim_time > 0
        assert not campaign.adc.has_defect  # always cleaned up

    def test_benign_defect_record(self, campaign):
        defect = next(d for d in campaign.universe
                      if d.block_path == "vcm_generator"
                      and d.device_name == "c_dec"
                      and d.kind is DefectKind.PASSIVE_HIGH)
        record = campaign.simulate_defect(defect)
        assert not record.detected
        assert record.detecting_invariance is None

    def test_stop_on_detection_reduces_modeled_time(self, deltas):
        defect_filter = dict(block_path="vcm_generator", device="r_top")
        stop = DefectCampaign(adc=SarAdc(), deltas=deltas,
                              stop_on_detection=True)
        full = DefectCampaign(adc=SarAdc(), deltas=deltas,
                              stop_on_detection=False)
        defect = next(d for d in stop.universe
                      if d.block_path == defect_filter["block_path"]
                      and d.device_name == defect_filter["device"]
                      and d.kind is DefectKind.SHORT)
        record_stop = stop.simulate_defect(defect)
        record_full = full.simulate_defect(
            full.universe.find(defect.defect_id))
        assert record_stop.cycles_run < record_full.cycles_run
        assert record_stop.modeled_sim_time < record_full.modeled_sim_time


class TestBlockCampaigns:
    def test_exhaustive_small_block_campaign(self, campaign, rng):
        result = campaign.run(SamplingPlan(exhaustive=True),
                              blocks=["sc_array"], rng=rng)
        report = result.block_report("sc_array")
        assert report.n_simulated == report.n_defects == len(result.records)
        assert report.coverage.ci_half_width is None
        assert report.coverage.value > 0.9  # paper: 97.7 %

    def test_lwrs_campaign_reports_confidence(self, campaign, rng):
        result = campaign.run(SamplingPlan(exhaustive=False, n_samples=40),
                              blocks=["subdac1"], rng=rng)
        report = result.block_report("subdac1")
        assert report.n_simulated == 40
        assert report.coverage.ci_half_width is not None
        assert 0.4 < report.coverage.value <= 1.0

    def test_reference_buffer_has_low_lw_coverage(self, campaign, rng):
        """The strongest qualitative claim of Table I: the reference buffer's
        likelihood-weighted coverage is near zero."""
        result = campaign.run(SamplingPlan(exhaustive=False, n_samples=40),
                              blocks=["reference_buffer"], rng=rng)
        assert result.overall_report().coverage.value < 0.2

    def test_overall_report_spans_requested_blocks(self, campaign, rng):
        result = campaign.run(SamplingPlan(exhaustive=False, n_samples=30),
                              blocks=["sc_array", "vcm_generator"], rng=rng)
        overall = result.overall_report()
        assert overall.block_path == "complete_ams_part"
        assert overall.n_simulated == 30

    def test_detections_by_invariance_counts(self, campaign, rng):
        result = campaign.run(SamplingPlan(exhaustive=True),
                              blocks=["vcm_generator"], rng=rng)
        by_inv = result.detections_by_invariance()
        assert sum(by_inv.values()) == result.n_detected
        assert set(by_inv) <= {"msb_sum", "lsb_sum", "dac_sum", "preamp_cm",
                               "sign", "latch_sum"}
        assert "dac_sum" in by_inv  # Eq. (3) checks the Vcm generator directly

    def test_unknown_block_rejected(self, campaign, rng):
        with pytest.raises(CoverageError):
            campaign.run(SamplingPlan(exhaustive=True), blocks=["no_block"],
                         rng=rng)

    def test_block_report_requires_records(self, campaign, rng):
        result = campaign.run(SamplingPlan(exhaustive=True),
                              blocks=["rs_latch"], rng=rng)
        with pytest.raises(CoverageError):
            result.block_report("bandgap")

    def test_progress_callback_invoked(self, campaign, rng):
        seen = []
        campaign.run(SamplingPlan(exhaustive=True), blocks=["offset_compensation"],
                     rng=rng, progress=lambda i, n, rec: seen.append((i, n)))
        assert len(seen) == len(campaign.universe.by_block("offset_compensation"))
        assert seen[0][1] == seen[-1][1] == len(seen)

    def test_undetected_defects_listing(self, campaign, rng):
        result = campaign.run(SamplingPlan(exhaustive=True),
                              blocks=["offset_compensation"], rng=rng)
        undetected = result.undetected_defects()
        assert len(undetected) == result.n_simulated - result.n_detected

    def test_run_per_block_mixes_exhaustive_and_lwrs(self, deltas, rng):
        campaign = DefectCampaign(adc=SarAdc(), deltas=deltas)
        results = campaign.run_per_block(n_samples_per_block=20, rng=rng,
                                         exhaustive_threshold=60)
        small_block = results["vcm_generator"]
        big_block = results["subdac1"]
        assert small_block.plan.exhaustive
        assert not big_block.plan.exhaustive
        assert big_block.n_simulated == 20


def _sweep_digest(results):
    return {block: [(r.defect.defect_id, r.detected,
                     r.detecting_invariance, r.detection_cycle)
                    for r in result.records]
            for block, result in results.items()}


class TestRunPerBlockSeeding:
    """Per-block draws derive from the root seed + block path, so the sweep
    is invariant to block order and block-subset restriction (the historical
    shared-rng loop made LWRS draws depend on which blocks ran before)."""

    BLOCKS = ["vcm_generator", "offset_compensation"]  # vcm uses LWRS here

    def _run(self, deltas, seed=7, **kwargs):
        campaign = DefectCampaign(adc=SarAdc(), deltas=deltas)
        return campaign.run_per_block(n_samples_per_block=10, seed=seed,
                                      exhaustive_threshold=20, **kwargs)

    def test_block_order_invariance(self, deltas):
        forward = self._run(deltas, blocks=self.BLOCKS)
        backward = self._run(deltas, blocks=list(reversed(self.BLOCKS)))
        assert _sweep_digest(forward) == _sweep_digest(backward)

    def test_block_subset_invariance(self, deltas):
        """A block's draws do not depend on which other blocks ran."""
        full = self._run(deltas, blocks=self.BLOCKS)
        alone = self._run(deltas, blocks=["vcm_generator"])
        assert _sweep_digest(alone)["vcm_generator"] == \
            _sweep_digest(full)["vcm_generator"]

    def test_legacy_rng_argument_is_order_invariant(self, deltas):
        """Passing rng= still works, and no longer threads one generator
        through the loop: same rng state => same sweep, any block order."""
        forward = self._run(deltas, seed=None,
                            rng=np.random.default_rng(3), blocks=self.BLOCKS)
        backward = self._run(deltas, seed=None,
                             rng=np.random.default_rng(3),
                             blocks=list(reversed(self.BLOCKS)))
        assert _sweep_digest(forward) == _sweep_digest(backward)

    def test_empty_block_list_rejected(self, deltas):
        with pytest.raises(CoverageError):
            self._run(deltas, blocks=[])

    def test_single_engine_report_spans_the_sweep(self, deltas):
        results = self._run(deltas, blocks=self.BLOCKS)
        reports = [result.engine_report for result in results.values()]
        assert all(report is reports[0] for report in reports)
        assert reports[0].n_tasks == sum(r.n_simulated
                                         for r in results.values())
        # Per-block timings are still split out via the task groups.
        assert set(reports[0].group_durations) == set(self.BLOCKS)
