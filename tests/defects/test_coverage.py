"""Tests for L-W coverage math (repro.defects.coverage)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import CoverageError
from repro.defects import (Defect, DefectKind, exhaustive_coverage,
                           lwrs_coverage, wilson_interval)


def make_defects(likelihoods):
    return [Defect(defect_id=f"b/d{i}:passive_high", block_path="b",
                   device_name=f"d{i}", kind=DefectKind.PASSIVE_HIGH,
                   likelihood=lik)
            for i, lik in enumerate(likelihoods)]


class TestWilsonInterval:
    def test_half_successes_centered(self):
        center, half = wilson_interval(50, 100)
        assert center == pytest.approx(0.5, abs=0.01)
        assert 0.08 < half < 0.12

    def test_extreme_proportions_stay_in_unit_interval(self):
        for successes, trials in ((0, 20), (20, 20), (1, 3)):
            center, half = wilson_interval(successes, trials)
            assert 0.0 <= center - half <= center + half <= 1.0

    def test_more_trials_narrow_the_interval(self):
        _, half_small = wilson_interval(10, 20)
        _, half_large = wilson_interval(100, 200)
        assert half_large < half_small

    def test_invalid_inputs_rejected(self):
        with pytest.raises(CoverageError):
            wilson_interval(1, 0)
        with pytest.raises(CoverageError):
            wilson_interval(5, 3)

    @given(st.integers(min_value=0, max_value=200),
           st.integers(min_value=1, max_value=200))
    @settings(max_examples=60, deadline=None)
    def test_interval_contains_point_estimate(self, successes, trials):
        successes = min(successes, trials)
        center, half = wilson_interval(successes, trials)
        p_hat = successes / trials
        assert center - half - 1e-9 <= p_hat <= center + half + 1e-9


class TestExhaustiveCoverage:
    def test_weighted_ratio(self):
        defects = make_defects([1.0, 1.0, 2.0])
        estimate = exhaustive_coverage([True, False, True], defects)
        assert estimate.value == pytest.approx(3.0 / 4.0)
        assert estimate.ci_half_width is None
        assert estimate.n_detected == 2

    def test_all_detected_is_full_coverage(self):
        defects = make_defects([0.5, 1.5])
        assert exhaustive_coverage([True, True], defects).value == 1.0

    def test_none_detected_is_zero(self):
        defects = make_defects([0.5, 1.5])
        assert exhaustive_coverage([False, False], defects).value == 0.0

    def test_high_likelihood_undetected_dominates(self):
        """The Table I effect: low L-W coverage despite many detections."""
        defects = make_defects([1.0] * 9 + [100.0])
        detected = [True] * 9 + [False]
        estimate = exhaustive_coverage(detected, defects)
        assert estimate.value < 0.1
        assert estimate.n_detected == 9

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(CoverageError):
            exhaustive_coverage([True], make_defects([1.0, 1.0]))
        with pytest.raises(CoverageError):
            exhaustive_coverage([], [])

    def test_formatting(self):
        defects = make_defects([1.0, 1.0])
        estimate = exhaustive_coverage([True, False], defects)
        assert estimate.formatted() == "50.00%"


class TestLwrsCoverage:
    def test_estimate_is_sample_fraction(self):
        estimate = lwrs_coverage([True] * 87 + [False] * 13,
                                 universe_size=2956,
                                 universe_likelihood=1000.0)
        assert estimate.value == pytest.approx(0.87)
        assert estimate.ci_half_width is not None
        assert estimate.universe_size == 2956

    def test_ci_shrinks_with_sample_size(self):
        small = lwrs_coverage([True] * 8 + [False] * 2, 100, 10.0)
        large = lwrs_coverage([True] * 80 + [False] * 20, 100, 10.0)
        assert large.ci_half_width < small.ci_half_width

    def test_paper_style_formatting(self):
        estimate = lwrs_coverage([True] * 87 + [False] * 13, 2956, 1.0)
        text = estimate.formatted()
        assert text.startswith("87.00% +/- ")

    def test_empty_sample_rejected(self):
        with pytest.raises(CoverageError):
            lwrs_coverage([], 10, 1.0)

    @given(st.lists(st.booleans(), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_estimate_bounded_by_unit_interval(self, detected):
        estimate = lwrs_coverage(detected, 1000, 1.0)
        assert 0.0 <= estimate.value <= 1.0
        assert 0.0 < estimate.ci_half_width <= 0.5 + 1e-9
