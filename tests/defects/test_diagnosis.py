"""Tests for invariance-signature defect diagnosis (repro.defects.diagnosis)."""

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.circuit import CoverageError
from repro.core import run_symbist
from repro.defects import (DefectKind, SamplingPlan, diagnose,
                           diagnosis_accuracy)


def failing_result(deltas, mutate):
    adc = SarAdc()
    mutate(adc)
    result = run_symbist(adc, deltas)
    adc.clear_defects()
    assert result.detected
    return result


class TestDiagnose:
    def test_requires_failing_result(self, adc, deltas):
        with pytest.raises(CoverageError):
            diagnose(run_symbist(adc, deltas))

    def test_vcm_defect_points_to_static_path(self, deltas):
        result = failing_result(
            deltas, lambda adc: setattr(
                adc.sarcell.vcm_generator.netlist.device("r_top").defect,
                "value_scale", 1.5))
        report = diagnose(result)
        assert "dac_sum" in report.persistent_invariances
        assert report.top_candidate in ("vcm_generator", "bandgap")
        assert report.score_of("vcm_generator") > report.score_of("rs_latch")

    def test_subdac_defect_points_to_code_steered_blocks(self, deltas):
        def mutate(adc):
            adc.sarcell.dac.subdac1.netlist.device("swp_07").defect.open_terminal = "p"
        report = diagnose(failing_result(deltas, mutate))
        assert report.code_dependent_invariances
        assert "subdac1" in report.ranked_blocks()[:3]

    def test_latch_defect_points_to_latches(self, deltas):
        def mutate(adc):
            adc.sarcell.comparator.latch.netlist.device("mn_clk").defect.open_terminal = "d"
        report = diagnose(failing_result(deltas, mutate))
        assert set(report.ranked_blocks()[:3]) & {"comparator_latch", "rs_latch"}

    def test_report_structure(self, deltas):
        def mutate(adc):
            adc.sarcell.dac.sc_array.netlist.device("cm_p").defect.value_scale = 1.5
        report = diagnose(failing_result(deltas, mutate))
        assert report.failing_invariances
        assert all(c.score > 0 for c in report.candidates)
        assert all(c.supporting_invariances for c in report.candidates)
        scores = [c.score for c in report.candidates]
        assert scores == sorted(scores, reverse=True)
        assert report.score_of("not_a_block") == 0.0


class TestDiagnosisAccuracy:
    def test_accuracy_over_a_small_campaign(self, campaign, rng):
        result = campaign.run(SamplingPlan(exhaustive=False, n_samples=25),
                              blocks=["vcm_generator", "sc_array", "subdac1"],
                              rng=rng)
        reports = []
        records = []
        for record in result.records:
            if not record.detected:
                continue
            with campaign.injector.injected(record.defect):
                run = campaign._build_controller().run()
            records.append(record)
            reports.append(diagnose(run))
        accuracy = diagnosis_accuracy(records, reports, top_n=3)
        assert 0.5 <= accuracy <= 1.0

    def test_accuracy_requires_detected_defects(self):
        with pytest.raises(CoverageError):
            diagnosis_accuracy([], [])
