"""Tests for the defect model and the likelihood model."""

import pytest

from repro.circuit import DefectError, capacitor, nmos, npn, resistor, switch
from repro.defects import (DEFAULT_TYPE_PRIORS, Defect, DefectKind,
                           LikelihoodModel, enumerate_device_defects)


class TestDefectDescription:
    def test_short_requires_two_terminals(self):
        with pytest.raises(DefectError):
            Defect(defect_id="x", block_path="b", device_name="d",
                   kind=DefectKind.SHORT, terminals=("d",))

    def test_open_requires_one_terminal(self):
        with pytest.raises(DefectError):
            Defect(defect_id="x", block_path="b", device_name="d",
                   kind=DefectKind.OPEN, terminals=("d", "s"))

    def test_positive_likelihood_required(self):
        with pytest.raises(DefectError):
            Defect(defect_id="x", block_path="b", device_name="d",
                   kind=DefectKind.PASSIVE_HIGH, likelihood=0.0)

    def test_description_mentions_location_and_kind(self):
        defect = Defect(defect_id="b/d:short:d-s", block_path="b",
                        device_name="d", kind=DefectKind.SHORT,
                        terminals=("d", "s"))
        assert "short" in defect.description
        assert "b/d" in defect.description

    def test_reweighted_copy(self):
        defect = Defect(defect_id="x", block_path="b", device_name="d",
                        kind=DefectKind.PASSIVE_LOW)
        heavier = defect.reweighted(3.5)
        assert heavier.likelihood == 3.5
        assert heavier.defect_id == defect.defect_id
        assert defect.likelihood == 1.0  # original untouched


class TestEnumeration:
    def test_mos_defect_count(self):
        defects = enumerate_device_defects("blk", nmos("m", "d", "g", "s"))
        shorts = [d for d in defects if d.kind is DefectKind.SHORT]
        opens = [d for d in defects if d.kind is DefectKind.OPEN]
        assert len(shorts) == 6 and len(opens) == 4
        assert len(defects) == 10

    def test_switch_defect_count(self):
        defects = enumerate_device_defects("blk", switch("s", "a", "b", "en"))
        assert len(defects) == 6  # 3 shorts + 3 opens

    def test_bjt_defect_count(self):
        defects = enumerate_device_defects("blk", npn("q", "c", "b", "e"))
        assert len(defects) == 6

    def test_passive_defect_count_includes_deviations(self):
        r_defects = enumerate_device_defects("blk", resistor("r", "a", "b", 1.0))
        c_defects = enumerate_device_defects("blk", capacitor("c", "a", "b", 1e-12))
        for defects in (r_defects, c_defects):
            kinds = [d.kind for d in defects]
            assert kinds.count(DefectKind.SHORT) == 1
            assert kinds.count(DefectKind.OPEN) == 2
            assert kinds.count(DefectKind.PASSIVE_HIGH) == 1
            assert kinds.count(DefectKind.PASSIVE_LOW) == 1

    def test_defect_ids_are_unique(self):
        defects = enumerate_device_defects("blk", nmos("m", "d", "g", "s"))
        ids = [d.defect_id for d in defects]
        assert len(ids) == len(set(ids))

    def test_open_defects_carry_a_pull(self):
        defects = enumerate_device_defects("blk", nmos("m", "d", "g", "s"))
        assert all(d.pull is not None for d in defects
                   if d.kind is DefectKind.OPEN)


class TestLikelihoodModel:
    def test_default_priors_favour_shorts(self):
        assert DEFAULT_TYPE_PRIORS[DefectKind.SHORT] > \
            DEFAULT_TYPE_PRIORS[DefectKind.OPEN] > \
            DEFAULT_TYPE_PRIORS[DefectKind.PASSIVE_HIGH]

    def test_likelihood_scales_with_device_area(self):
        model = LikelihoodModel()
        small = nmos("m1", "d", "g", "s", w=1e-6)
        large = nmos("m2", "d", "g", "s", w=10e-6)
        defect_small = enumerate_device_defects("b", small)[0]
        defect_large = enumerate_device_defects("b", large)[0]
        assert model.likelihood(defect_large, large) == pytest.approx(
            10 * model.likelihood(defect_small, small))

    def test_block_scale_multiplies(self):
        model = LikelihoodModel(block_scale={"noisy_block": 2.0})
        dev = nmos("m", "d", "g", "s")
        defect = enumerate_device_defects("noisy_block", dev)[0]
        other = enumerate_device_defects("other", dev)[0]
        assert model.likelihood(defect, dev) == pytest.approx(
            2 * model.likelihood(other, dev))

    def test_reweight_attaches_likelihood(self):
        model = LikelihoodModel()
        dev = resistor("r", "a", "b", 1e4)
        defect = enumerate_device_defects("b", dev)[0]
        weighted = model.reweight(defect, dev)
        assert weighted.likelihood == pytest.approx(model.likelihood(defect, dev))

    def test_invalid_priors_rejected(self):
        with pytest.raises(DefectError):
            LikelihoodModel(type_priors={DefectKind.SHORT: 0.0})
        with pytest.raises(DefectError):
            LikelihoodModel(block_scale={"blk": -1.0})
