"""Tests for defect-universe extraction, injection, and LWRS sampling."""

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.circuit import CoverageError, DefectError
from repro.defects import (DefectInjector, DefectKind, DefectUniverse,
                           LikelihoodModel, SamplingPlan,
                           build_defect_universe, lwrs_sample, select_defects)


class TestUniverseExtraction:
    def test_covers_every_analog_block(self, session_universe):
        paths = set(session_universe.block_paths())
        assert paths == {"bandgap", "reference_buffer", "subdac1", "subdac2",
                         "sc_array", "vcm_generator", "preamplifier",
                         "comparator_latch", "rs_latch", "offset_compensation"}

    def test_universe_size_in_paper_ballpark(self, session_universe):
        """Paper Table I: 2956 defects for the complete A/M-S part."""
        assert 2000 <= len(session_universe) <= 4000

    def test_subdacs_dominate_the_defect_count(self, session_universe):
        counts = session_universe.counts_by_block()
        assert counts["subdac1"] == counts["subdac2"]
        assert counts["subdac1"] > 0.25 * len(session_universe)

    def test_all_likelihoods_positive(self, session_universe):
        assert all(d.likelihood > 0 for d in session_universe)
        assert session_universe.total_likelihood > 0

    def test_kind_mix(self, session_universe):
        kinds = session_universe.counts_by_kind()
        assert kinds["short"] > kinds["passive_high"]
        assert set(kinds) == {"short", "open", "passive_high", "passive_low"}

    def test_by_block_and_by_kind_filters(self, session_universe):
        sc = session_universe.by_block("sc_array")
        assert len(sc) > 0
        assert all(d.block_path == "sc_array" for d in sc)
        shorts = session_universe.by_kind(DefectKind.SHORT)
        assert all(d.kind is DefectKind.SHORT for d in shorts)

    def test_find_by_id(self, session_universe):
        some = session_universe.defects[10]
        assert session_universe.find(some.defect_id) is some
        with pytest.raises(DefectError):
            session_universe.find("does/not:exist")

    def test_block_restriction_at_build_time(self):
        adc = SarAdc()
        universe = build_defect_universe(adc.build_hierarchy(),
                                         blocks=["sc_array"])
        assert set(universe.block_paths()) == {"sc_array"}

    def test_probabilities_sum_to_one(self, session_universe):
        probs = session_universe.probabilities()
        assert probs.sum() == pytest.approx(1.0)
        assert (probs > 0).all()

    def test_empty_universe_probabilities_raise(self):
        with pytest.raises(DefectError):
            DefectUniverse([]).probabilities()


class TestInjection:
    def test_inject_and_remove_short(self):
        adc = SarAdc()
        hierarchy = adc.build_hierarchy()
        universe = build_defect_universe(hierarchy)
        injector = DefectInjector(hierarchy)
        defect = next(d for d in universe if d.kind is DefectKind.SHORT
                      and d.block_path == "sc_array")
        device = injector.inject(defect)
        assert device.has_defect
        assert injector.active_defect is defect
        injector.remove()
        assert not device.has_defect
        assert injector.active_defect is None

    def test_single_defect_assumption_enforced(self):
        adc = SarAdc()
        hierarchy = adc.build_hierarchy()
        universe = build_defect_universe(hierarchy)
        injector = DefectInjector(hierarchy)
        injector.inject(universe.defects[0])
        with pytest.raises(DefectError):
            injector.inject(universe.defects[1])
        injector.remove()

    def test_context_manager_always_cleans_up(self):
        adc = SarAdc()
        hierarchy = adc.build_hierarchy()
        universe = build_defect_universe(hierarchy)
        injector = DefectInjector(hierarchy)
        defect = universe.defects[5]
        with pytest.raises(RuntimeError):
            with injector.injected(defect):
                raise RuntimeError("simulation blew up")
        assert not injector.resolve(defect).has_defect

    def test_passive_deviation_injection_scales_value(self):
        adc = SarAdc()
        hierarchy = adc.build_hierarchy()
        universe = build_defect_universe(hierarchy)
        injector = DefectInjector(hierarchy)
        defect = next(d for d in universe if d.kind is DefectKind.PASSIVE_HIGH
                      and d.block_path == "sc_array")
        with injector.injected(defect) as device:
            assert device.defect.value_scale == pytest.approx(1.5)

    def test_open_injection_records_pull(self):
        adc = SarAdc()
        hierarchy = adc.build_hierarchy()
        universe = build_defect_universe(hierarchy)
        injector = DefectInjector(hierarchy)
        defect = next(d for d in universe if d.kind is DefectKind.OPEN)
        with injector.injected(defect) as device:
            assert device.defect.open_terminal == defect.terminals[0]
            assert device.defect.open_pull is defect.pull

    def test_remove_without_injection_is_noop(self):
        adc = SarAdc()
        injector = DefectInjector(adc.build_hierarchy())
        injector.remove()  # must not raise


class TestLwrsSampling:
    def test_sample_size(self, session_universe, rng):
        sample = lwrs_sample(session_universe, 50, rng)
        assert len(sample) == 50

    def test_sampling_is_reproducible(self, session_universe):
        sample_a = lwrs_sample(session_universe, 30, np.random.default_rng(4))
        sample_b = lwrs_sample(session_universe, 30, np.random.default_rng(4))
        assert [d.defect_id for d in sample_a] == [d.defect_id for d in sample_b]

    def test_sampling_favours_high_likelihood_blocks(self, session_universe, rng):
        sample = lwrs_sample(session_universe, 400, rng)
        likelihood = session_universe.likelihood_by_block()
        heaviest = max(likelihood, key=likelihood.get)
        lightest = min(likelihood, key=likelihood.get)
        counts = {}
        for defect in sample:
            counts[defect.block_path] = counts.get(defect.block_path, 0) + 1
        assert counts.get(heaviest, 0) > counts.get(lightest, 0)

    def test_without_replacement_never_repeats(self, session_universe, rng):
        sample = lwrs_sample(session_universe, 200, rng, with_replacement=False)
        ids = [d.defect_id for d in sample]
        assert len(ids) == len(set(ids))

    def test_invalid_requests_rejected(self, session_universe, rng):
        with pytest.raises(CoverageError):
            lwrs_sample(session_universe, 0, rng)
        with pytest.raises(CoverageError):
            lwrs_sample(DefectUniverse([]), 5, rng)

    def test_select_defects_exhaustive(self, session_universe, rng):
        plan = SamplingPlan(exhaustive=True)
        assert len(select_defects(session_universe, plan, rng)) == \
            len(session_universe)

    def test_select_defects_lwrs(self, session_universe, rng):
        plan = SamplingPlan(exhaustive=False, n_samples=25)
        assert len(select_defects(session_universe, plan, rng)) == 25

    def test_invalid_plan_rejected(self):
        with pytest.raises(CoverageError):
            SamplingPlan(exhaustive=False, n_samples=0)
