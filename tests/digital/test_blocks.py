"""Tests for the gate-level SAR logic / control / phase generator models."""

import pytest

from repro.digital import (build_phase_generator, build_sar_control,
                           build_sar_logic, digital_ip_gate_count)


def run_conversion(netlist, decisions):
    """Drive the gate-level SAR logic through one full conversion."""
    state = netlist.reset_state()
    outs, state = netlist.step({"start": 1, "comp": 0}, state)
    code = None
    for bit, decision in enumerate(decisions):
        outs, state = netlist.step({"start": 0, "comp": decision}, state)
    return state


class TestSarLogicGateLevel:
    def test_all_keep_gives_full_scale(self):
        net = build_sar_logic()
        state = run_conversion(net, [1] * 10)
        code = sum(state[f"b{i}_q"] << i for i in range(10))
        assert code == 1023

    def test_all_clear_gives_zero(self):
        net = build_sar_logic()
        state = run_conversion(net, [0] * 10)
        code = sum(state[f"b{i}_q"] << i for i in range(10))
        assert code == 0

    def test_alternating_decisions(self):
        net = build_sar_logic()
        decisions = [1, 0, 1, 0, 1, 0, 1, 0, 1, 0]  # MSB first
        state = run_conversion(net, decisions)
        code = sum(state[f"b{i}_q"] << i for i in range(10))
        expected = sum(bit << (9 - pos) for pos, bit in enumerate(decisions))
        assert code == expected

    def test_trial_outputs_track_bit_under_test(self):
        net = build_sar_logic()
        state = net.reset_state()
        outs, state = net.step({"start": 1, "comp": 0}, state)
        outs, state = net.step({"start": 0, "comp": 0}, state)
        # After the first conversion cycle the MSB marker has moved to bit 8,
        # so the trial code shows bit 8 high (plus any already-decided bits).
        assert state["seq8_q"] == 1

    def test_matches_behavioral_sar_logic(self):
        """The gate-level register must agree with the behavioral model."""
        from repro.adc import SarLogic
        decisions = [1, 1, 0, 1, 0, 0, 1, 0, 1, 1]
        behavioral = SarLogic()
        behavioral.start_conversion()
        for decision in decisions:
            behavioral.apply_decision(decision)
        net = build_sar_logic()
        state = run_conversion(net, decisions)
        gate_code = sum(state[f"b{i}_q"] << i for i in range(10))
        assert gate_code == behavioral.result()

    def test_size_is_plausible(self):
        net = build_sar_logic()
        assert net.n_flops == 20
        assert net.n_gates == 70


class TestSarControlGateLevel:
    def test_one_hot_rotation(self):
        net = build_sar_control()
        state = net.reset_state()
        for expected in range(13):
            outs, state = net.step({"enable": 1}, state)
            active = [i for i in range(12) if outs[f"p{i}_q"] == 1]
            assert active == [expected % 12]

    def test_recovers_from_all_zero_state(self):
        net = build_sar_control()
        state = {f"p{i}_q": 0 for i in range(12)}
        # The token-missing detector reloads pulse 0 on the next clock edge.
        outs, state = net.step({"enable": 1}, state)
        assert sum(state[f"p{i}_q"] for i in range(12)) == 1
        assert state["p0_q"] == 1

    def test_disabled_counter_holds_no_token(self):
        net = build_sar_control()
        state = net.reset_state()
        outs, state = net.step({"enable": 0}, state)
        assert sum(state[f"p{i}_q"] for i in range(12)) == 0


class TestPhaseGeneratorGateLevel:
    def _inputs(self, active, enable=1):
        values = {f"p{i}": 1 if i == active else 0 for i in range(12)}
        values["enable"] = enable
        return values

    def test_sampling_phase(self):
        net = build_phase_generator()
        values = net.evaluate(self._inputs(0))
        assert values["sample"] == 1 and values["track"] == 1
        assert values["convert"] == 0 and values["capture"] == 0

    def test_conversion_phase(self):
        net = build_phase_generator()
        for pulse in range(1, 11):
            values = net.evaluate(self._inputs(pulse))
            assert values["convert"] == 1
            assert values["strobe"] == 1
            assert values["sample"] == 0

    def test_capture_phase(self):
        net = build_phase_generator()
        values = net.evaluate(self._inputs(11))
        assert values["capture"] == 1 and values["convert"] == 0

    def test_disable_gates_conversion(self):
        net = build_phase_generator()
        values = net.evaluate(self._inputs(5, enable=0))
        assert values["convert"] == 0 and values["track"] == 0

    def test_is_purely_combinational(self):
        assert build_phase_generator().n_flops == 0


class TestGateCount:
    def test_digital_ip_gate_count_is_stable(self):
        count = digital_ip_gate_count()
        assert 200 < count < 600
        assert count == digital_ip_gate_count()
