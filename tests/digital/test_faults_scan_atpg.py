"""Tests for stuck-at faults, fault simulation, scan insertion and ATPG."""

import pytest

from repro.circuit import DigitalTestError
from repro.digital import (DigitalNetlist, GateKind, ScanChain, ScanPattern,
                           StuckAtFault, build_phase_generator,
                           build_sar_control, build_sar_logic,
                           enumerate_stuck_at_faults, greedy_atpg, insert_scan,
                           random_atpg, simulate_faults)


def small_combinational():
    net = DigitalNetlist("c17ish")
    for name in ("a", "b", "c"):
        net.add_input(name)
    net.add_gate("g1", GateKind.NAND, ["a", "b"], "n1")
    net.add_gate("g2", GateKind.NAND, ["b", "c"], "n2")
    net.add_gate("g3", GateKind.NAND, ["n1", "n2"], "y")
    net.add_output("y")
    return net


def exhaustive_patterns(netlist):
    patterns = []
    n = len(netlist.primary_inputs)
    for value in range(2 ** n):
        inputs = {net: (value >> i) & 1
                  for i, net in enumerate(netlist.primary_inputs)}
        patterns.append(ScanPattern(inputs=inputs, state={}))
    return patterns


class TestFaultEnumeration:
    def test_stem_and_pin_faults(self):
        net = small_combinational()
        faults = enumerate_stuck_at_faults(net)
        stems = [f for f in faults if f.pin is None]
        pins = [f for f in faults if f.pin is not None]
        assert len(stems) == 2 * len(net.nets())
        assert len(pins) == 2 * sum(len(g.inputs) for g in net.gates)

    def test_fault_ids_unique(self):
        faults = enumerate_stuck_at_faults(small_combinational())
        ids = [f.fault_id for f in faults]
        assert len(ids) == len(set(ids))

    def test_invalid_stuck_value_rejected(self):
        with pytest.raises(DigitalTestError):
            StuckAtFault(net="x", stuck_value=2)


class TestFaultSimulation:
    def test_exhaustive_patterns_reach_full_coverage(self):
        """Every stuck-at fault of an irredundant circuit is detectable."""
        net = small_combinational()
        result = simulate_faults(net, exhaustive_patterns(net))
        assert result.coverage == pytest.approx(1.0)
        assert not result.undetected

    def test_single_pattern_partial_coverage(self):
        net = small_combinational()
        single = [ScanPattern(inputs={"a": 0, "b": 0, "c": 0}, state={})]
        result = simulate_faults(net, single)
        assert 0.0 < result.coverage < 1.0
        assert result.n_faults == len(result.detected) + len(result.undetected)

    def test_no_patterns_rejected(self):
        with pytest.raises(DigitalTestError):
            simulate_faults(small_combinational(), [])

    def test_detected_fault_records_pattern_index(self):
        net = small_combinational()
        result = simulate_faults(net, exhaustive_patterns(net))
        assert all(0 <= idx < 8 for idx in result.detected.values())


class TestScanChain:
    def test_chain_covers_all_flops(self):
        net = build_sar_control()
        chain = insert_scan(net)
        assert chain.length == net.n_flops

    def test_load_and_unload_round_trip(self):
        net = build_sar_control()
        chain = insert_scan(net)
        bits = [(i % 2) for i in range(chain.length)]
        state = chain.load(bits)
        assert chain.unload(state) == bits

    def test_wrong_load_length_rejected(self):
        chain = insert_scan(build_sar_control())
        with pytest.raises(DigitalTestError):
            chain.load([0, 1])

    def test_test_cycle_accounting(self):
        chain = insert_scan(build_sar_control())
        per_pattern = chain.cycles_per_pattern()
        assert per_pattern == chain.length + 1
        assert chain.test_cycles(10) == 10 * per_pattern + chain.length

    def test_combinational_block_gets_empty_chain(self):
        chain = insert_scan(build_phase_generator())
        assert chain.length == 0
        assert chain.load([]) == {}

    def test_wrong_scan_order_rejected(self):
        net = build_sar_control()
        with pytest.raises(DigitalTestError):
            ScanChain(netlist=net, order=["p0_q"])


class TestAtpg:
    def test_random_atpg_reaches_high_coverage_on_sar_logic(self):
        result = random_atpg(build_sar_logic(), n_patterns=48, seed=1)
        assert result.coverage > 0.9
        assert result.n_patterns == 48

    def test_greedy_atpg_compacts_patterns(self):
        netlist = build_sar_logic()
        random_result = random_atpg(netlist, n_patterns=64, seed=2)
        greedy_result = greedy_atpg(netlist, candidate_patterns=64, seed=2)
        assert greedy_result.n_patterns < random_result.n_patterns
        assert greedy_result.coverage >= random_result.coverage - 0.05

    def test_atpg_on_phase_generator(self):
        # The wide OR tree of the conversion-phase decoder contains
        # random-pattern-resistant stuck-at-1 faults (they need the all-zero
        # pulse pattern), so random ATPG needs a large pattern budget here.
        few = random_atpg(build_phase_generator(), n_patterns=32, seed=3)
        many = random_atpg(build_phase_generator(), n_patterns=512, seed=3)
        assert many.coverage >= few.coverage
        assert many.coverage > 0.45
        # The undetected faults are the expected random-pattern-resistant
        # class: they need a one-hot / all-zero pulse combination.
        assert all(f.net.startswith(("p", "cv", "strobe", "convert"))
                   for f in many.undetected)

    def test_results_are_reproducible(self):
        a = random_atpg(build_sar_control(), n_patterns=16, seed=7)
        b = random_atpg(build_sar_control(), n_patterns=16, seed=7)
        assert a.coverage == b.coverage

    def test_invalid_pattern_counts_rejected(self):
        with pytest.raises(DigitalTestError):
            random_atpg(build_sar_control(), n_patterns=0)
        with pytest.raises(DigitalTestError):
            greedy_atpg(build_sar_control(), candidate_patterns=0)
