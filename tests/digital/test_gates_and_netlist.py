"""Tests for gate primitives and gate-level netlists (repro.digital)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import DigitalTestError
from repro.digital import (DigitalNetlist, GateKind, PinOverride, StemOverride,
                           evaluate_gate)


class TestGateEvaluation:
    def test_two_input_truth_tables(self):
        for a, b in itertools.product((0, 1), repeat=2):
            assert evaluate_gate(GateKind.AND, [a, b]) == (a & b)
            assert evaluate_gate(GateKind.OR, [a, b]) == (a | b)
            assert evaluate_gate(GateKind.XOR, [a, b]) == (a ^ b)
            assert evaluate_gate(GateKind.NAND, [a, b]) == 1 - (a & b)
            assert evaluate_gate(GateKind.NOR, [a, b]) == 1 - (a | b)
            assert evaluate_gate(GateKind.XNOR, [a, b]) == 1 - (a ^ b)

    def test_inverter_and_buffer(self):
        assert evaluate_gate(GateKind.NOT, [0]) == 1
        assert evaluate_gate(GateKind.NOT, [1]) == 0
        assert evaluate_gate(GateKind.BUF, [1]) == 1

    def test_wide_gates(self):
        assert evaluate_gate(GateKind.AND, [1, 1, 1, 0]) == 0
        assert evaluate_gate(GateKind.OR, [0, 0, 0, 1]) == 1
        assert evaluate_gate(GateKind.XOR, [1, 1, 1]) == 1

    def test_invalid_values_rejected(self):
        with pytest.raises(DigitalTestError):
            evaluate_gate(GateKind.AND, [1, 2])

    def test_wrong_arity_rejected(self):
        with pytest.raises(DigitalTestError):
            evaluate_gate(GateKind.NOT, [0, 1])
        with pytest.raises(DigitalTestError):
            evaluate_gate(GateKind.AND, [1])

    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=2,
                    max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_demorgan_property(self, bits):
        """Property: NAND == NOT(AND) and NOR == NOT(OR)."""
        assert evaluate_gate(GateKind.NAND, bits) == \
            1 - evaluate_gate(GateKind.AND, bits)
        assert evaluate_gate(GateKind.NOR, bits) == \
            1 - evaluate_gate(GateKind.OR, bits)


def build_mux():
    """2:1 mux: out = a when sel=0 else b."""
    net = DigitalNetlist("mux")
    for name in ("a", "b", "sel"):
        net.add_input(name)
    net.add_gate("g_nsel", GateKind.NOT, ["sel"], "nsel")
    net.add_gate("g_a", GateKind.AND, ["a", "nsel"], "a_path")
    net.add_gate("g_b", GateKind.AND, ["b", "sel"], "b_path")
    net.add_gate("g_or", GateKind.OR, ["a_path", "b_path"], "out")
    net.add_output("out")
    return net


class TestDigitalNetlist:
    def test_mux_function(self):
        net = build_mux()
        assert net.evaluate({"a": 1, "b": 0, "sel": 0})["out"] == 1
        assert net.evaluate({"a": 1, "b": 0, "sel": 1})["out"] == 0
        assert net.evaluate({"a": 0, "b": 1, "sel": 1})["out"] == 1

    def test_duplicate_names_rejected(self):
        net = build_mux()
        with pytest.raises(DigitalTestError):
            net.add_gate("g_or", GateKind.AND, ["a", "b"], "x")
        with pytest.raises(DigitalTestError):
            net.add_input("a")

    def test_two_drivers_rejected(self):
        net = build_mux()
        with pytest.raises(DigitalTestError):
            net.add_gate("g_dup", GateKind.AND, ["a", "b"], "out")

    def test_missing_input_value_rejected(self):
        net = build_mux()
        with pytest.raises(DigitalTestError):
            net.evaluate({"a": 1, "b": 0})

    def test_combinational_loop_detected(self):
        net = DigitalNetlist("loop")
        net.add_input("x")
        net.add_gate("g1", GateKind.AND, ["x", "b"], "a")
        net.add_gate("g2", GateKind.BUF, ["a"], "b")
        net.add_output("a")
        with pytest.raises(DigitalTestError):
            net.evaluate({"x": 1})

    def test_stem_override_forces_net(self):
        net = build_mux()
        values = net.evaluate({"a": 1, "b": 1, "sel": 0},
                              overrides=[StemOverride(net="out", value=0)])
        assert values["out"] == 0

    def test_pin_override_only_affects_that_gate(self):
        net = build_mux()
        # Force the select pin of the a-path AND to 0 (pin fault), while the
        # b-path still sees the real select value.
        values = net.evaluate({"a": 1, "b": 1, "sel": 1},
                              overrides=[PinOverride("g_b", 1, 0)])
        assert values["b_path"] == 0
        assert values["nsel"] == 0

    def test_sequential_step(self):
        net = DigitalNetlist("counter1")
        net.add_input("en")
        net.add_gate("g_next", GateKind.XOR, ["q", "en"], "d")
        net.add_flop("ff", d="d", q="q")
        net.add_output("q")
        state = net.reset_state()
        seq = []
        for _ in range(4):
            outs, state = net.step({"en": 1}, state)
            seq.append(outs["q"])
        assert seq == [0, 1, 0, 1]

    def test_nets_listing(self):
        net = build_mux()
        nets = net.nets()
        assert "out" in nets and "nsel" in nets and "a" in nets

    def test_reset_state_uses_reset_values(self):
        net = DigitalNetlist("rv")
        net.add_input("x")
        net.add_flop("ff", d="x", q="q", reset_value=1)
        net.add_output("q")
        assert net.reset_state() == {"q": 1}
