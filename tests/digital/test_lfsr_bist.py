"""Tests for the LFSR / MISR primitives and the logic-BIST wrapper."""

import pytest

from repro.circuit import DigitalTestError
from repro.digital import (Lfsr, LogicBist, Misr, StuckAtFault,
                           build_sar_control, build_sar_logic)


class TestLfsr:
    def test_maximal_length_sequence(self):
        lfsr = Lfsr(width=4, seed=1)
        states = set()
        for _ in range(lfsr.period):
            lfsr.step()
            states.add(lfsr.state)
        assert len(states) == 15  # every non-zero state visited

    def test_never_reaches_zero(self):
        lfsr = Lfsr(width=5, seed=3)
        for _ in range(2 * lfsr.period):
            lfsr.step()
            assert lfsr.state != 0

    def test_zero_seed_rejected(self):
        with pytest.raises(DigitalTestError):
            Lfsr(width=8, seed=0)

    def test_unknown_width_rejected(self):
        with pytest.raises(DigitalTestError):
            Lfsr(width=13)

    def test_bit_stream_is_reproducible(self):
        a = Lfsr(width=16, seed=0xACE1).next_bits(64)
        b = Lfsr(width=16, seed=0xACE1).next_bits(64)
        assert a == b

    def test_bit_stream_is_balanced(self):
        bits = Lfsr(width=16, seed=0xACE1).next_bits(2000)
        ones = sum(bits)
        assert 0.4 < ones / len(bits) < 0.6

    def test_negative_bit_request_rejected(self):
        with pytest.raises(DigitalTestError):
            Lfsr(width=8, seed=1).next_bits(-1)


class TestMisr:
    def test_signature_depends_on_data(self):
        misr_a, misr_b = Misr(width=16), Misr(width=16)
        misr_a.compact([1, 0, 1, 1])
        misr_b.compact([1, 0, 1, 0])
        assert misr_a.signature != misr_b.signature

    def test_signature_depends_on_order(self):
        misr_a, misr_b = Misr(width=16), Misr(width=16)
        misr_a.compact([1, 0])
        misr_a.compact([0, 1])
        misr_b.compact([0, 1])
        misr_b.compact([1, 0])
        assert misr_a.signature != misr_b.signature

    def test_reset_clears_signature(self):
        misr = Misr(width=16)
        misr.compact([1, 1, 1])
        misr.reset()
        assert misr.signature == 0

    def test_too_wide_slice_rejected(self):
        with pytest.raises(DigitalTestError):
            Misr(width=4).compact([1, 0, 1, 0, 1])

    def test_invalid_bits_rejected(self):
        with pytest.raises(DigitalTestError):
            Misr(width=8).compact([2])


class TestLogicBist:
    def test_bist_on_sar_logic(self):
        result = LogicBist(build_sar_logic()).run(n_patterns=40)
        assert result.fault_coverage > 0.85
        assert result.golden_signature != 0
        assert result.test_cycles > 0
        assert result.test_time > 0

    def test_signature_detects_an_injected_fault(self):
        bist = LogicBist(build_sar_logic())
        fault = StuckAtFault(net="comp", stuck_value=1)
        assert bist.detects_fault(fault, n_patterns=32)

    def test_golden_signature_is_reproducible(self):
        a = LogicBist(build_sar_control()).run(n_patterns=24)
        b = LogicBist(build_sar_control()).run(n_patterns=24)
        assert a.golden_signature == b.golden_signature

    def test_more_patterns_do_not_reduce_coverage(self):
        bist = LogicBist(build_sar_control())
        short = bist.run(n_patterns=16)
        long = bist.run(n_patterns=64)
        assert long.fault_coverage >= short.fault_coverage - 1e-9

    def test_invalid_pattern_count_rejected(self):
        with pytest.raises(DigitalTestError):
            LogicBist(build_sar_logic()).run(n_patterns=0)
