"""Property-based tests of the declarative DUT specification.

The DutSpec is the contract between the study layer and the model layer:
its canonical serialization feeds cache keys (via ``fingerprint()``) and
warehouse rows, so the round-trip must be exact -- a spec that drifts
through TOML or JSON would silently fork the cache.  These tests generate
random valid variants and assert the TOML and JSON round-trips are
identity maps, and that invalid specs are rejected at construction with
messages that name the field, the unit and the accepted range.
"""

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import DutSpecError
from repro.dut import DutSpec, Range, default_dut

#: The content hash of the paper's (all-defaults) device; pinned because it
#: feeds cache keys -- changing it invalidates every existing cache.
DEFAULT_FINGERPRINT = "44136fa355b3678a"


@st.composite
def dut_payloads(draw):
    """A random valid ``[dut]`` payload (sparse: each field optional)."""
    payload = {}
    if draw(st.booleans()):
        payload["resolution_bits"] = draw(
            st.sampled_from([4, 6, 8, 10, 12, 14, 16]))
    vdd = 1.2
    if draw(st.booleans()):
        vdd = draw(st.floats(min_value=0.7, max_value=3.3,
                             allow_nan=False, allow_infinity=False))
        payload["vdd"] = vdd
    if draw(st.booleans()):
        payload["vcm"] = draw(
            st.floats(min_value=0.21, max_value=min(vdd - 0.05, 3.0),
                      allow_nan=False, allow_infinity=False))
    if draw(st.booleans()):
        payload["vcm2"] = draw(
            st.floats(min_value=0.21, max_value=min(vdd - 0.05, 3.0),
                      allow_nan=False, allow_infinity=False))
    if draw(st.booleans()):
        payload["ibias"] = draw(
            st.floats(min_value=1e-6, max_value=1e-3,
                      allow_nan=False, allow_infinity=False))
    if draw(st.booleans()):
        payload["c_unit"] = draw(
            st.floats(min_value=1e-15, max_value=1e-12,
                      allow_nan=False, allow_infinity=False))
    if draw(st.booleans()):
        payload["r_ladder"] = draw(
            st.floats(min_value=10.0, max_value=1e5,
                      allow_nan=False, allow_infinity=False))
    if draw(st.booleans()):
        payload["test_input_diff"] = draw(
            st.floats(min_value=-3.0, max_value=3.0,
                      allow_nan=False, allow_infinity=False))
    if draw(st.booleans()):
        payload["block_params"] = {
            "sc_array": {"gain": draw(
                st.floats(min_value=0.5, max_value=1.5,
                          allow_nan=False, allow_infinity=False))}}
    if draw(st.booleans()):
        payload["variation"] = {
            "mos_strength_sigma": draw(
                st.floats(min_value=0.0, max_value=0.2,
                          allow_nan=False, allow_infinity=False))}
    return payload


class TestRoundTrip:
    @given(payload=dut_payloads())
    @settings(max_examples=100, deadline=None)
    def test_toml_and_json_round_trips_are_identity(self, payload):
        spec = DutSpec.from_jsonable(payload)
        via_json = DutSpec.from_jsonable(spec.to_jsonable())
        via_toml = DutSpec.from_toml(spec.to_toml())
        assert via_json == spec
        assert via_toml == spec
        assert via_json.fingerprint() == spec.fingerprint()
        assert via_toml.fingerprint() == spec.fingerprint()

    @given(payload=dut_payloads())
    @settings(max_examples=50, deadline=None)
    def test_jsonable_payload_is_json_serializable(self, payload):
        spec = DutSpec.from_jsonable(payload)
        text = json.dumps(spec.to_jsonable(), sort_keys=True)
        assert DutSpec.from_jsonable(json.loads(text)) == spec

    @given(payload=dut_payloads())
    @settings(max_examples=50, deadline=None)
    def test_merged_with_nothing_is_identity(self, payload):
        spec = DutSpec.from_jsonable(payload)
        assert spec.merged({}) == spec

    def test_default_serializes_empty_and_fingerprint_is_pinned(self):
        assert DutSpec().to_jsonable() == {}
        assert DutSpec().fingerprint() == DEFAULT_FINGERPRINT
        assert default_dut().is_default

    def test_spelled_out_defaults_do_not_move_the_fingerprint(self):
        spec = DutSpec(vdd=1.2, resolution_bits=10, vcm2=0.55)
        assert spec.fingerprint() == DEFAULT_FINGERPRINT
        assert spec.is_default

    def test_unit_suffixed_strings_parse_and_round_trip(self):
        spec = DutSpec.from_jsonable({"vdd": "1.32 V", "f_clk": "156e6 Hz"})
        assert spec.vdd == 1.32
        assert spec.f_clk == 156e6
        assert DutSpec.from_toml(spec.to_toml()) == spec


class TestRejection:
    @given(vdd=st.one_of(
        st.floats(max_value=0.59, allow_nan=False, allow_infinity=False),
        st.floats(min_value=3.31, allow_nan=False, allow_infinity=False)))
    @settings(max_examples=40, deadline=None)
    def test_out_of_range_values_name_field_and_range(self, vdd):
        with pytest.raises(DutSpecError, match=r"dut\.vdd.*range"):
            DutSpec(vdd=vdd)

    def test_unit_mismatch_names_the_expected_unit(self):
        with pytest.raises(DutSpecError, match=r"dut\.vdd.*'V'"):
            DutSpec(vdd="1.2 A")

    def test_non_numeric_value_is_rejected(self):
        with pytest.raises(DutSpecError, match=r"dut\.vdd"):
            DutSpec(vdd="twelve volts")

    @given(bits=st.sampled_from([5, 7, 9, 11, 13, 15]))
    @settings(max_examples=6, deadline=None)
    def test_odd_resolution_is_rejected_with_suggestion(self, bits):
        with pytest.raises(DutSpecError, match="even"):
            DutSpec(resolution_bits=bits)

    def test_fractional_resolution_is_rejected(self):
        with pytest.raises(DutSpecError, match="integer"):
            DutSpec(resolution_bits=9.5)

    def test_common_mode_outside_rails_is_rejected(self):
        with pytest.raises(DutSpecError, match="between"):
            DutSpec(vdd=1.2, vcm=1.3)

    def test_out_of_range_ground_is_rejected(self):
        # The vss and vdd ranges cannot overlap, so an in-range spec always
        # has vdd > vss; a runaway ground is caught by its own range first.
        with pytest.raises(DutSpecError, match=r"dut\.vss.*range"):
            DutSpec(vss=0.5)

    def test_unknown_key_lists_known_keys(self):
        with pytest.raises(DutSpecError, match="unknown.*resolution_bits"):
            DutSpec.from_jsonable({"resolutionbits": 8})

    def test_unknown_variation_field_lists_choices(self):
        with pytest.raises(DutSpecError, match="mos_strength_sigma"):
            DutSpec(variation={"sigma_mos": 0.1})

    def test_non_finite_values_are_rejected(self):
        with pytest.raises(DutSpecError, match="finite"):
            DutSpec(ibias=float("nan"))


class TestFingerprint:
    def test_distinct_variants_have_distinct_fingerprints(self):
        fingerprints = {
            DutSpec().fingerprint(),
            DutSpec(resolution_bits=8).fingerprint(),
            DutSpec(vdd=1.08).fingerprint(),
            DutSpec(vdd=1.32).fingerprint(),
        }
        assert len(fingerprints) == 4

    def test_fingerprint_is_order_insensitive(self):
        a = DutSpec.from_jsonable({"vdd": 1.32, "resolution_bits": 8})
        b = DutSpec.from_jsonable({"resolution_bits": 8, "vdd": 1.32})
        assert a.fingerprint() == b.fingerprint()

    def test_merged_overlay_wins_and_keeps_base(self):
        base = DutSpec(vdd=1.32)
        merged = base.merged({"resolution_bits": 8})
        assert merged.vdd == 1.32
        assert merged.resolution_bits == 8
        assert merged.fingerprint() != base.fingerprint()


class TestGeometry:
    @given(bits=st.sampled_from([4, 6, 8, 10, 12, 14, 16]))
    @settings(max_examples=7, deadline=None)
    def test_derived_geometry_is_consistent(self, bits):
        spec = DutSpec(resolution_bits=bits)
        assert spec.half_bits * 2 == bits
        assert spec.n_codes == 2 ** bits
        assert spec.counter_codes * spec.counter_codes == spec.n_codes
        assert spec.n_ref_levels == spec.counter_codes + 1
        assert spec.mid_code == (spec.counter_codes // 2) * spec.n_ref_levels
        assert spec.cycles_per_conversion == bits + 2

    def test_paper_geometry(self):
        spec = default_dut()
        assert (spec.n_codes, spec.n_ref_levels, spec.mid_code) == \
            (1024, 33, 528)

    def test_common_mode_defaults_to_mid_rail(self):
        assert DutSpec().common_mode == pytest.approx(0.6)
        assert DutSpec(vcm=0.5).common_mode == 0.5
        assert DutSpec(vdd=1.0).common_mode == pytest.approx(0.5)

    def test_parameter_info_exposes_declaration(self):
        info = DutSpec().parameter_info("vdd")
        assert info.units == "V"
        assert isinstance(info.soft_set, Range)
        assert 1.2 in info.soft_set
        with pytest.raises(DutSpecError, match="no typed parameter"):
            DutSpec().parameter_info("nonsense")
