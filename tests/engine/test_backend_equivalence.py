"""Randomized serial x multiprocess x shm equivalence suite.

The engine's core guarantee is that the execution backend is invisible in
the results: whatever shards the work, the windows, detections, coverage and
engine-report counts must be *bit-identical* to the serial run.  Instead of
pinning a handful of hand-picked workloads, this suite draws ~20 randomized
campaign specs from one seeded generator (so every run of the suite sees the
same cases) spanning the five drivers -- defect campaigns, window
calibration, the yield-loss sweep, the calibrate->campaign graph and the
per-block study graph -- and checks each pool backend against a memoized
serial baseline.
"""

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.analysis import yield_loss_sweep
from repro.core import collect_defect_free_residuals
from repro.core.calibration import windows_from_pools
from repro.defects import DefectCampaign, SamplingPlan
from repro.engine import (MultiprocessBackend, SerialBackend,
                          SharedMemoryBackend, block_study,
                          calibrate_then_campaign)

#: Entropy of the case generator: fixed so the ~20 cases are stable across
#: runs (reproducible failures) while still randomly covering the spec space.
CASE_ENTROPY = 20200309

#: Blocks small enough that a per-case campaign stays fast.
SMALL_BLOCKS = ("offset_compensation", "vcm_generator", "preamplifier",
                "rs_latch", "comparator_latch", "sc_array")
#: Blocks small enough to exhaust in a randomized case.
EXHAUSTIVE_BLOCKS = ("offset_compensation", "vcm_generator")


def _random_cases():
    rng = np.random.default_rng(CASE_ENTROPY)
    kinds = ["campaign"] * 10 + ["calibration"] * 4 + ["yield"] * 3 + \
        ["pipeline"] * 3 + ["block-study"] * 3
    cases = []
    for index, kind in enumerate(kinds):
        case = {"kind": kind, "seed": int(rng.integers(0, 2 ** 31))}
        if kind == "campaign":
            case["exhaustive"] = bool(rng.integers(2))
            blocks = EXHAUSTIVE_BLOCKS if case["exhaustive"] else SMALL_BLOCKS
            case["block"] = blocks[int(rng.integers(len(blocks)))]
            case["n_samples"] = int(rng.integers(5, 13))
            case["stop_on_detection"] = bool(rng.integers(2))
        elif kind == "calibration":
            case["n_mc"] = int(rng.integers(3, 6))
            case["k"] = float(rng.integers(3, 7))
        elif kind == "yield":
            case["k_values"] = tuple(
                float(k) for k in sorted(rng.uniform(2.0, 6.0, size=3)))
        elif kind == "pipeline":
            case["block"] = SMALL_BLOCKS[int(rng.integers(len(SMALL_BLOCKS)))]
            case["n_samples"] = int(rng.integers(5, 10))
        else:  # block-study: a random 2-block sweep, LWRS + exhaustive mix
            picks = rng.choice(len(SMALL_BLOCKS), size=2, replace=False)
            case["blocks"] = [SMALL_BLOCKS[int(i)] for i in picks]
            case["n_samples"] = int(rng.integers(5, 10))
            case["threshold"] = int(rng.integers(10, 40))
        case["id"] = f"{kind}-{index}"
        cases.append(case)
    return cases


CASES = _random_cases()

#: Serial baselines, memoized per case so each is computed once for both
#: pool-backend parametrizations.
_SERIAL_BASELINE = {}


def _campaign_key(result):
    return [(r.defect.defect_id, r.detected, r.detecting_invariance,
             r.detection_cycle, r.cycles_run, r.modeled_sim_time)
            for r in result.records]


def _report_counts(report):
    return (report.n_tasks, report.n_executed, report.n_cache_hits,
            report.n_failed, report.n_skipped)


def _run_case(case, backend, deltas, calibration, batch_size=1):
    """Execute one randomized spec; return its full comparable signature."""
    kind = case["kind"]
    if kind == "campaign":
        campaign = DefectCampaign(
            adc=SarAdc(), deltas=deltas,
            stop_on_detection=case["stop_on_detection"])
        plan = SamplingPlan(exhaustive=case["exhaustive"],
                            n_samples=case["n_samples"])
        result = campaign.run(plan, blocks=[case["block"]],
                              rng=np.random.default_rng(case["seed"]),
                              backend=backend, batch_size=batch_size)
        report = result.block_report(case["block"])
        return {"records": _campaign_key(result),
                "detections": result.detections_by_invariance(),
                "coverage": (report.coverage.value,
                             report.coverage.ci_half_width),
                "counts": _report_counts(result.engine_report)}
    if kind == "calibration":
        pools = collect_defect_free_residuals(
            n_monte_carlo=case["n_mc"],
            rng=np.random.default_rng(case["seed"]), backend=backend)
        return {"pools": pools,
                "windows": windows_from_pools(pools, case["k"])}
    if kind == "yield":
        points = yield_loss_sweep(calibration, k_values=case["k_values"],
                                  backend=backend)
        return {"points": points}
    if kind == "pipeline":
        # The dependency-graph (stream-mode) path of every backend.
        outcome = calibrate_then_campaign(
            n_monte_carlo=3, seed=case["seed"], blocks=[case["block"]],
            samples=case["n_samples"], backend=backend)
        result = outcome.results[case["block"]]
        return {"windows": (outcome.calibration.sigmas,
                            outcome.calibration.means,
                            outcome.calibration.deltas),
                "records": _campaign_key(result),
                "counts": _report_counts(outcome.report)}
    # block-study: per-block windows, detections and coverage of a multi-
    # block sweep must be bit-identical whatever backend runs the graph.
    outcome = block_study(
        n_monte_carlo=3, seed=case["seed"], blocks=case["blocks"],
        samples=case["n_samples"], exhaustive_threshold=case["threshold"],
        backend=backend, batch_size=batch_size)
    return {"windows": {block: (cal.sigmas, cal.means, cal.deltas)
                        for block, cal in outcome.calibrations.items()},
            "records": {block: _campaign_key(result)
                        for block, result in outcome.results.items()},
            "coverage": {block: (summary["coverage"],
                                 summary["ci_half_width"],
                                 summary["n_detected"])
                         for block, summary in outcome.summaries.items()},
            "counts": _report_counts(outcome.report)}


@pytest.mark.parametrize("backend_name", ["multiprocess", "shm"])
@pytest.mark.parametrize("case", CASES, ids=[c["id"] for c in CASES])
def test_pool_backend_matches_serial(case, backend_name, deltas, calibration):
    if case["id"] not in _SERIAL_BASELINE:
        _SERIAL_BASELINE[case["id"]] = _run_case(
            case, SerialBackend(), deltas, calibration)
    backend = {"multiprocess": MultiprocessBackend,
               "shm": SharedMemoryBackend}[backend_name](max_workers=2)
    assert _run_case(case, backend, deltas, calibration) == \
        _SERIAL_BASELINE[case["id"]]


#: Batch sizes exercised by the batched equivalence cases.  The large value
#: always exceeds a case's sampled universe, i.e. one task per block.
BATCH_SIZES = (1, 7, 10_000)

#: Randomized campaign and block-study specs re-run batched: same seeded
#: generator as CASES, so the batched runs face the same spec space.
BATCH_CASES = [c for c in CASES if c["kind"] == "campaign"][:2] + \
    [c for c in CASES if c["kind"] == "block-study"][:1]


def _strip_counts(signature):
    """Drop the engine-report task counts from a case signature.

    Batching intentionally changes the task decomposition (one task per
    batch), so the per-task counts differ from the unbatched baseline; the
    per-defect results -- records, detections, windows, coverage -- must
    not.  Task/item reconciliation is covered by the telemetry suite.
    """
    return {key: value for key, value in signature.items() if key != "counts"}


@pytest.mark.parametrize("backend_name", ["serial", "multiprocess", "shm"])
@pytest.mark.parametrize("batch_size", BATCH_SIZES)
@pytest.mark.parametrize("case", BATCH_CASES,
                         ids=[c["id"] for c in BATCH_CASES])
def test_batched_run_matches_unbatched_serial(case, batch_size, backend_name,
                                              deltas, calibration):
    """Campaign results are bit-identical for every (batch size, backend)."""
    if case["id"] not in _SERIAL_BASELINE:
        _SERIAL_BASELINE[case["id"]] = _run_case(
            case, SerialBackend(), deltas, calibration)
    if backend_name == "serial":
        backend = SerialBackend()
    else:
        backend = {"multiprocess": MultiprocessBackend,
                   "shm": SharedMemoryBackend}[backend_name](max_workers=2)
    batched = _run_case(case, backend, deltas, calibration,
                        batch_size=batch_size)
    assert _strip_counts(batched) == \
        _strip_counts(_SERIAL_BASELINE[case["id"]])


# ---------------------------------------------------------------- socket
#: One randomized case per driver kind, re-run over the socket backend.
#: The backend ships work to out-of-process workers over TCP; because every
#: task carries its own SeedSequence-derived seed material, the results
#: must be bit-identical to the serial baseline whatever worker executes
#: (or re-executes) them.
SOCKET_CASES = [next(c for c in CASES if c["kind"] == kind)
                for kind in ("campaign", "calibration", "yield",
                             "pipeline", "block-study")]


@pytest.fixture(scope="module")
def socket_backend():
    from repro.service import SocketBackend
    with SocketBackend("tcp:127.0.0.1:0", spawn_workers=2) as backend:
        yield backend


@pytest.mark.parametrize("case", SOCKET_CASES,
                         ids=[c["id"] for c in SOCKET_CASES])
def test_socket_backend_matches_serial(case, socket_backend, deltas,
                                       calibration):
    if case["id"] not in _SERIAL_BASELINE:
        _SERIAL_BASELINE[case["id"]] = _run_case(
            case, SerialBackend(), deltas, calibration)
    assert _run_case(case, socket_backend, deltas, calibration) == \
        _SERIAL_BASELINE[case["id"]]


def test_socket_backend_with_worker_death_matches_serial(deltas,
                                                         calibration):
    """A worker dying mid-run only costs a requeue, never a result change:
    the victim's in-flight task re-executes on a survivor with the same
    per-task seed, so the full signature stays bit-identical."""
    from repro.service import SocketBackend
    case = SOCKET_CASES[0]  # a campaign: the largest task population
    if case["id"] not in _SERIAL_BASELINE:
        _SERIAL_BASELINE[case["id"]] = _run_case(
            case, SerialBackend(), deltas, calibration)
    with SocketBackend("tcp:127.0.0.1:0") as backend:
        backend.spawn_worker(crash_after=2)  # dies on its third task
        backend.spawn_worker()
        assert _run_case(case, backend, deltas, calibration) == \
            _SERIAL_BASELINE[case["id"]]
