"""Tests for the execution backends and the campaign engine itself."""

import numpy as np
import pytest

from repro.circuit import EngineError, TaskExecutionError
from repro.engine import (CampaignEngine, MultiprocessBackend, ResultCache,
                          ResultCodec, SerialBackend, Task, TaskGraph)


# Module-level workers so the multiprocess backend can pickle them.
def square_worker(context, task, rng):
    return task.payload ** 2


def draw_worker(context, task, rng):
    return float(rng.normal())


def failing_worker(context, task, rng):
    if task.payload == 3:
        raise ValueError("boom on task 3")
    return task.payload


def context_worker(context, task, rng):
    return context["offset"] + task.payload


def tasks_of(n, **kwargs):
    return TaskGraph([Task(task_id=f"t{i}", payload=i, **kwargs)
                      for i in range(n)])


class TestSerialBackend:
    def test_maps_in_order(self):
        run = CampaignEngine(backend=SerialBackend()).run(
            tasks_of(5), square_worker)
        assert run.results == [0, 1, 4, 9, 16]
        assert run.report.backend == "serial"
        assert run.report.n_executed == 5
        assert run.report.n_cache_hits == 0

    def test_context_shared_by_all_tasks(self):
        run = CampaignEngine().run(tasks_of(3), context_worker,
                                   context={"offset": 10})
        assert run.results == [10, 11, 12]

    def test_error_names_the_task(self):
        with pytest.raises(TaskExecutionError, match="t3"):
            CampaignEngine().run(tasks_of(5), failing_worker)

    def test_progress_callback(self):
        seen = []
        CampaignEngine().run(
            tasks_of(3), square_worker,
            progress=lambda outcome: seen.append(
                (outcome.index, outcome.done, outcome.total,
                 outcome.from_cache)))
        assert seen == [(0, 1, 3, False), (1, 2, 3, False), (2, 3, 3, False)]

    def test_empty_graph(self):
        run = CampaignEngine().run(TaskGraph(), square_worker)
        assert run.results == []
        assert run.report.n_tasks == 0

    def test_result_for(self):
        run = CampaignEngine().run(tasks_of(3), square_worker)
        assert run.result_for("t2") == 4
        with pytest.raises(EngineError):
            run.result_for("missing")


class TestMultiprocessBackend:
    def test_matches_serial_results(self):
        serial = CampaignEngine(backend=SerialBackend()).run(
            tasks_of(10), square_worker)
        parallel = CampaignEngine(
            backend=MultiprocessBackend(max_workers=3)).run(
            tasks_of(10), square_worker)
        assert parallel.results == serial.results
        assert parallel.report.backend == "multiprocess"
        assert parallel.report.workers == 3

    def test_seeded_draws_independent_of_worker_count(self):
        serial = CampaignEngine(seed=42).run(tasks_of(8), draw_worker)
        two = CampaignEngine(
            seed=42, backend=MultiprocessBackend(max_workers=2)).run(
            tasks_of(8), draw_worker)
        four = CampaignEngine(
            seed=42,
            backend=MultiprocessBackend(max_workers=4, chunk_size=1)).run(
            tasks_of(8), draw_worker)
        assert two.results == serial.results
        assert four.results == serial.results

    def test_different_root_seeds_differ(self):
        a = CampaignEngine(seed=1).run(tasks_of(4), draw_worker)
        b = CampaignEngine(seed=2).run(tasks_of(4), draw_worker)
        assert a.results != b.results

    def test_seedsequence_root_is_reusable(self):
        """A caller-owned SeedSequence root must give identical seeds on
        every run (children are derived statelessly, not spawned)."""
        root = np.random.SeedSequence(5)
        engine = CampaignEngine(seed=root)
        first = engine.run(tasks_of(4), draw_worker)
        second = engine.run(tasks_of(4), draw_worker)
        from_int = CampaignEngine(seed=5).run(tasks_of(4), draw_worker)
        assert first.results == second.results == from_int.results

    def test_explicit_task_seed_wins(self):
        explicit = TaskGraph([Task(task_id="t", seed=123)])
        run_a = CampaignEngine(seed=1).run(explicit, draw_worker)
        run_b = CampaignEngine(seed=2).run(
            TaskGraph([Task(task_id="t", seed=123)]), draw_worker)
        assert run_a.results == run_b.results

    def test_worker_error_propagates_across_pool(self):
        with pytest.raises(TaskExecutionError, match="t3"):
            CampaignEngine(backend=MultiprocessBackend(max_workers=2)).run(
                tasks_of(5), failing_worker)

    def test_chunking_covers_all_items(self):
        backend = MultiprocessBackend(max_workers=2, chunk_size=3)
        chunks = backend._chunks(list(range(8)))
        assert [len(c) for c in chunks] == [3, 3, 2]
        assert [x for chunk in chunks for x in chunk] == list(range(8))

    def test_invalid_configuration_rejected(self):
        with pytest.raises(EngineError):
            MultiprocessBackend(max_workers=0)
        with pytest.raises(EngineError):
            MultiprocessBackend(chunk_size=0)


class TestEngineCaching:
    def test_cache_hit_skips_execution(self, tmp_path):
        cache = ResultCache(str(tmp_path), namespace="test")
        def build():
            return TaskGraph([Task(task_id=f"t{i}", payload=i,
                                   spec={"op": "square", "i": i},
                                   deterministic=True)
                              for i in range(4)])
        cold = CampaignEngine(cache=cache).run(build(), square_worker)
        warm = CampaignEngine(cache=cache).run(build(), square_worker)
        assert warm.results == cold.results == [0, 1, 4, 9]
        assert cold.report.n_cache_hits == 0 and cold.report.n_executed == 4
        assert warm.report.n_cache_hits == 4 and warm.report.n_executed == 0
        assert warm.report.cache_hit_rate == 1.0

    def test_spec_change_invalidates(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        first = CampaignEngine(cache=cache).run(
            [Task(task_id="t", payload=2, spec={"v": 1}, deterministic=True)],
            square_worker)
        second = CampaignEngine(cache=cache).run(
            [Task(task_id="t", payload=2, spec={"v": 2}, deterministic=True)],
            square_worker)
        assert first.report.n_executed == second.report.n_executed == 1

    def test_seeded_tasks_key_on_seed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        spec = {"op": "draw"}
        a = CampaignEngine(seed=1, cache=cache).run(
            [Task(task_id="t", spec=spec)], draw_worker)
        b = CampaignEngine(seed=2, cache=cache).run(
            [Task(task_id="t", spec=spec)], draw_worker)
        a_again = CampaignEngine(seed=1, cache=cache).run(
            [Task(task_id="t", spec=spec)], draw_worker)
        assert a.results != b.results
        assert a_again.results == a.results
        assert a_again.report.n_cache_hits == 1

    def test_tasks_without_spec_never_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        CampaignEngine(cache=cache).run(tasks_of(3), square_worker)
        assert len(cache) == 0

    def test_codec_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        codec = ResultCodec(encode=lambda v: {"wrapped": v},
                            decode=lambda d: d["wrapped"])
        def build():
            return [Task(task_id="t", payload=3, spec={"op": "square"},
                         deterministic=True)]
        cold = CampaignEngine(cache=cache).run(build(), square_worker,
                                               codec=codec)
        warm = CampaignEngine(cache=cache).run(build(), square_worker,
                                               codec=codec)
        assert cold.results == warm.results == [9]

    def test_multiprocess_drains_completed_chunks_on_failure(self, tmp_path):
        """Chunks that finished before (or alongside) a failure must still
        reach the cache; only unstarted chunks are abandoned."""
        cache = ResultCache(str(tmp_path), namespace="test")
        graph = TaskGraph([Task(task_id=f"t{i}", payload=i,
                                spec={"op": "fail-at-3", "i": i},
                                deterministic=True)
                           for i in range(6)])
        backend = MultiprocessBackend(max_workers=1, chunk_size=2)
        with pytest.raises(TaskExecutionError, match="t3"):
            CampaignEngine(cache=cache, backend=backend).run(
                graph, failing_worker)
        # Chunk [t0, t1] completed, and t2 finished before its chunk-mate t3
        # raised: at least those three artifacts must be on disk.  Chunk
        # [t4, t5] may contribute two more if the worker picked it up before
        # the parent's best-effort cancellation; only t3 itself is never
        # stored.
        assert len(cache) >= 3
        assert len(cache) <= 5

    def test_completed_results_cached_despite_later_failure(self, tmp_path):
        cache = ResultCache(str(tmp_path), namespace="test")
        graph = TaskGraph([Task(task_id=f"t{i}", payload=i,
                                spec={"op": "fail-at-3", "i": i},
                                deterministic=True)
                           for i in range(4)])
        with pytest.raises(TaskExecutionError):
            CampaignEngine(cache=cache).run(graph, failing_worker)
        # Tasks 0..2 completed before t3 failed: their artifacts must exist.
        assert len(cache) == 3

    def test_cached_tasks_fire_progress(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        def build():
            return [Task(task_id="t", payload=2, spec={"op": "square"},
                         deterministic=True)]
        CampaignEngine(cache=cache).run(build(), square_worker)
        seen = []
        CampaignEngine(cache=cache).run(
            build(), square_worker,
            progress=lambda outcome: seen.append(outcome.from_cache))
        assert seen == [True]


class TestReport:
    def test_summary_mentions_backend_and_counts(self):
        run = CampaignEngine().run(tasks_of(3), square_worker)
        summary = run.report.summary()
        assert "3 tasks" in summary
        assert "serial" in summary

    def test_group_durations(self):
        graph = TaskGraph([Task(task_id="a", payload=1, group="g1"),
                           Task(task_id="b", payload=2, group="g1"),
                           Task(task_id="c", payload=3, group="g2")])
        run = CampaignEngine().run(graph, square_worker)
        assert set(run.report.group_durations) == {"g1", "g2"}
        assert run.report.task_durations.keys() == {"a", "b", "c"}


class TestMpContext:
    """Worker start-method selection on the pool backends."""

    def test_invalid_context_rejected_with_valid_names(self):
        with pytest.raises(EngineError) as excinfo:
            MultiprocessBackend(max_workers=2, mp_context="threads")
        message = str(excinfo.value)
        assert "threads" in message
        assert "spawn" in message  # every platform offers spawn

    def test_default_context_is_platform_default(self):
        backend = MultiprocessBackend(max_workers=2)
        assert backend.mp_context is None
        assert backend._pool_context() is None

    def test_spawn_matches_serial_results(self):
        """Seeded draws are identical whatever start method runs them."""
        import multiprocessing
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        graph = tasks_of(6)
        serial = CampaignEngine(backend=SerialBackend(), seed=11).run(
            graph, draw_worker)
        spawned = CampaignEngine(
            backend=MultiprocessBackend(max_workers=2, mp_context="spawn"),
            seed=11).run(graph, draw_worker)
        assert spawned.results == serial.results
        assert spawned.report.backend == "multiprocess"

    def test_forkserver_stream_mode_matches_serial(self):
        """The dependency-graph (stream) path honours mp_context too."""
        import multiprocessing
        if "forkserver" not in multiprocessing.get_all_start_methods():
            pytest.skip("forkserver start method unavailable")
        graph = TaskGraph(
            [Task(task_id=f"root/{i}") for i in range(4)]
            + [Task(task_id="total",
                    depends_on=tuple(f"root/{i}" for i in range(4)))])

        serial = CampaignEngine(backend=SerialBackend(), seed=3).run(
            graph, _graph_draw_worker)
        pooled = CampaignEngine(
            backend=MultiprocessBackend(max_workers=2,
                                        mp_context="forkserver"),
            seed=3).run(graph, _graph_draw_worker)
        assert pooled.results == serial.results


def _graph_draw_worker(context, task, rng, inputs):
    base = sum(inputs.values()) if inputs else 0.0
    return base + float(rng.normal())
