"""Concurrent-writer safety of the result cache.

The cache is content-addressed: two writers racing on one key are by
construction writing the same bytes, so the race must resolve silently
(last rename wins) -- never with an exception, a torn artifact or a
leftover ``.tmp`` file.
"""

import glob
import os
import threading

import pytest

from repro.engine import MISS, ResultCache


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"), namespace="race")


def _tmp_files(cache):
    return [path for path in glob.glob(os.path.join(cache.cache_dir,
                                                    "**", "*"),
                                       recursive=True)
            if ".tmp" in os.path.basename(path)]


class TestConcurrentPut:
    def test_two_threads_hammering_one_key(self, cache):
        payload = {"values": list(range(200)), "tag": "same-for-both"}
        errors = []
        barrier = threading.Barrier(2)

        def hammer():
            try:
                barrier.wait(timeout=10.0)
                for _ in range(300):
                    cache.put("hot-key", payload)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        assert cache.get("hot-key") == payload
        assert _tmp_files(cache) == []

    def test_many_threads_many_keys(self, cache):
        errors = []
        barrier = threading.Barrier(4)

        def hammer(worker):
            try:
                barrier.wait(timeout=10.0)
                for i in range(50):
                    key = f"key-{i % 5}"
                    cache.put(key, {"key": key})
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        for i in range(5):
            assert cache.get(f"key-{i}") == {"key": f"key-{i}"}
        assert _tmp_files(cache) == []

    def test_sidecar_writers_race_cleanly(self, cache):
        # the .npy sidecar path uses the same publish-or-discard rename
        payload = {"residuals": [float(i) for i in range(600)]}
        errors = []
        barrier = threading.Barrier(2)

        def hammer():
            try:
                barrier.wait(timeout=10.0)
                for _ in range(50):
                    cache.put("sidecar-key", payload, sidecar=True)
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60.0)
        assert not errors, errors
        assert cache.get("sidecar-key") == payload
        assert _tmp_files(cache) == []

    def test_lost_race_unlinks_own_tmp(self, cache, monkeypatch):
        # Force the loser's path deterministically: os.replace fails while
        # the destination already exists -> the loser must swallow the
        # error and remove its temp file.
        cache.put("key", {"v": 1})
        destination = cache._path("key")
        assert os.path.exists(destination)
        real_replace = os.replace
        calls = {"n": 0}

        def flaky_replace(src, dst):
            if dst == destination and calls["n"] == 0:
                calls["n"] += 1
                raise OSError("simulated rename collision")
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", flaky_replace)
        cache.put("key", {"v": 1})  # must not raise
        assert cache.get("key") == {"v": 1}
        assert _tmp_files(cache) == []

    def test_real_failure_still_raises(self, cache, monkeypatch):
        def broken_replace(src, dst):
            raise OSError("disk on fire")

        monkeypatch.setattr(os, "replace", broken_replace)
        with pytest.raises(OSError):
            cache.put("fresh-key", {"v": 2})  # no destination to fall back on


def test_miss_sentinel_unchanged(cache):
    assert cache.get("never-written") is MISS
