"""Tests for :class:`ResultCache` eviction (max_bytes / max_age / LRU)."""

import json
import os
import time

import pytest

from repro.circuit import EngineError
from repro.engine import MISS, ResultCache


def _put(cache, i, pad=0):
    key = cache.key_for({"i": i})
    cache.put(key, {"i": i, "pad": "x" * pad})
    return key


def _backdate(cache, key, seconds):
    """Shift an artifact's mtime into the past (simulates idle time)."""
    path = os.path.join(cache.cache_dir, f"{key}.json")
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


def _rewrite_created(cache, key, seconds_ago):
    """Rewrite the stored creation timestamp (simulates elapsed wall time)."""
    path = os.path.join(cache.cache_dir, f"{key}.json")
    with open(path, "r", encoding="utf-8") as handle:
        entry = json.load(handle)
    entry["created"] = time.time() - seconds_ago
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(entry, handle)


class TestValidation:
    def test_rejects_non_positive_max_bytes(self, tmp_path):
        with pytest.raises(EngineError):
            ResultCache(str(tmp_path), max_bytes=0)

    def test_rejects_non_positive_max_age(self, tmp_path):
        with pytest.raises(EngineError):
            ResultCache(str(tmp_path), max_age=-1.0)


class TestMaxBytes:
    def test_under_budget_keeps_everything(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_bytes=10_000_000)
        keys = [_put(cache, i) for i in range(5)]
        assert len(cache) == 5
        assert all(cache.get(k) is not MISS for k in keys)
        assert cache.evictions == 0

    def test_over_budget_evicts_least_recently_used_first(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        old = _put(cache, 0, pad=200)
        young = _put(cache, 1, pad=200)
        _backdate(cache, old, seconds=100)
        _backdate(cache, young, seconds=10)

        # Budget holds two artifacts (with headroom for timestamp-length
        # jitter) but not three: the write must evict exactly one, and it
        # must be the least recently used.
        bounded = ResultCache(str(tmp_path),
                              max_bytes=cache.total_bytes() + 100)
        _put(bounded, 2, pad=200)
        assert bounded.get(old) is MISS
        assert bounded.get(young) is not MISS
        assert bounded.evictions >= 1

    def test_read_refreshes_recency(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        first = _put(cache, 0, pad=200)
        second = _put(cache, 1, pad=200)
        _backdate(cache, first, seconds=100)
        _backdate(cache, second, seconds=50)

        bounded = ResultCache(str(tmp_path),
                              max_bytes=cache.total_bytes() + 100)
        assert bounded.get(first) is not MISS  # LRU touch: now the youngest
        _put(bounded, 2, pad=200)
        assert bounded.get(second) is MISS  # evicted instead of `first`
        assert bounded.get(first) is not MISS

    def test_max_bytes_boundary(self, tmp_path):
        unbounded = ResultCache(str(tmp_path))
        for i in range(3):
            _put(unbounded, i)
        total = unbounded.total_bytes()

        exact = ResultCache(str(tmp_path), max_bytes=total)
        assert exact.evict() == 0  # exactly at budget: nothing to do
        assert len(exact) == 3

        over = ResultCache(str(tmp_path), max_bytes=total - 1)
        assert over.evict() == 1  # one byte over: exactly one artifact goes
        assert len(over) == 2


class TestMaxAge:
    def test_expiry_survives_process_restart(self, tmp_path):
        # First "process": write an artifact, no eviction policy at all.
        writer = ResultCache(str(tmp_path))
        key = _put(writer, 0)
        _rewrite_created(writer, key, seconds_ago=100)

        # Second "process": a fresh instance sees the stored creation time.
        reader = ResultCache(str(tmp_path), max_age=50)
        assert reader.get(key) is MISS
        assert len(reader) == 0  # expired artifact deleted on sight

    def test_fresh_artifact_survives(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_age=3600)
        key = _put(cache, 0)
        assert cache.get(key) is not MISS
        assert cache.evict() == 0

    def test_evict_removes_idle_artifacts(self, tmp_path):
        writer = ResultCache(str(tmp_path))
        stale = _put(writer, 0)
        fresh = _put(writer, 1)
        _backdate(writer, stale, seconds=100)

        bounded = ResultCache(str(tmp_path), max_age=50)
        assert bounded.evict() == 1
        assert bounded.get(stale) is MISS
        assert bounded.get(fresh) is not MISS

    def test_put_triggers_age_eviction(self, tmp_path):
        writer = ResultCache(str(tmp_path))
        stale = _put(writer, 0)
        _backdate(writer, stale, seconds=100)

        bounded = ResultCache(str(tmp_path), max_age=50)
        _put(bounded, 1)  # the write sweeps the stale artifact
        assert bounded.evictions == 1
        assert len(bounded) == 1

    def test_read_path_expiry_counts_as_eviction(self, tmp_path):
        """Regression: a ``max_age`` expiry discovered by :meth:`get` must
        count as both a miss and an eviction, and delete the artifact."""
        writer = ResultCache(str(tmp_path))
        key = _put(writer, 0)
        _rewrite_created(writer, key, seconds_ago=100)

        reader = ResultCache(str(tmp_path), max_age=50)
        assert reader.get(key) is MISS
        assert reader.stats()["evictions"] == 1
        assert reader.stats()["misses"] == 1
        assert reader.stats()["hits"] == 0
        assert len(reader) == 0

    def test_evict_collects_recently_read_expired_artifacts(self, tmp_path):
        """Regression: reads refresh the mtime (LRU-on-read), so an expired
        artifact can look recently used; a GC pass must still remove it by
        its stored creation timestamp, or it leaks until someone happens to
        ``get`` its exact key again."""
        writer = ResultCache(str(tmp_path))
        stale = _put(writer, 0)
        fresh = _put(writer, 1)
        _rewrite_created(writer, stale, seconds_ago=100)
        # A read refreshes the expired artifact's mtime.
        assert ResultCache(str(tmp_path)).get(stale) is not MISS

        bounded = ResultCache(str(tmp_path), max_age=50)
        assert bounded.evict() == 1
        assert bounded.evictions == 1
        assert bounded.get(stale) is MISS
        assert bounded.get(fresh) is not MISS

    def test_non_utf8_artifact_neither_crashes_sweep_nor_get(self, tmp_path):
        """Regression: a torn binary file in the cache dir must not abort
        the GC sweep (which now opens fresh-mtime artifacts) or reads."""
        cache = ResultCache(str(tmp_path), max_age=50)
        good = _put(cache, 0)
        junk = os.path.join(cache.cache_dir, "0" * 64 + ".json")
        with open(junk, "wb") as handle:
            handle.write(b"\xff\xfe\x00garbage")
        assert cache.evict() == 0  # junk has no timestamp: kept, not fatal
        assert cache.get(good) is not MISS
        assert cache.get("0" * 64) is MISS  # junk reads as a plain miss

    def test_legacy_artifact_without_timestamp_is_kept(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_age=50)
        key = _put(cache, 0)
        path = os.path.join(cache.cache_dir, f"{key}.json")
        with open(path, "r", encoding="utf-8") as handle:
            entry = json.load(handle)
        del entry["created"]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(entry, handle)
        assert cache.get(key) is not MISS


class TestStats:
    def test_eviction_counter_in_stats(self, tmp_path):
        writer = ResultCache(str(tmp_path))
        key = _put(writer, 0)
        _backdate(writer, key, seconds=100)
        bounded = ResultCache(str(tmp_path), max_age=50)
        bounded.evict()
        assert bounded.stats()["evictions"] == 1


class TestStaleFileSweep:
    """Crash leftovers: ``.tmp`` files and orphaned ``.npy`` sidecars."""

    def test_injected_crash_during_put_does_not_leak_tmp(self, tmp_path,
                                                         monkeypatch):
        cache = ResultCache(str(tmp_path))

        def crash(src, dst):
            raise RuntimeError("injected crash before rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(RuntimeError):
            cache.put(cache.key_for({"i": 1}), {"i": 1})
        monkeypatch.undo()
        assert not [name for name in os.listdir(str(tmp_path))
                    if name.endswith(".tmp")]

    def test_killed_writer_tmp_swept_by_evict_after_grace(self, tmp_path):
        from repro.engine.cache import TMP_GRACE_SECONDS
        cache = ResultCache(str(tmp_path))
        key = _put(cache, 1)
        live_bytes = cache.total_bytes()
        # A killed *process* dies between mkstemp and os.replace with no
        # exception handler running: the .tmp survives, referenced by
        # nothing and invisible to the size accounting.
        leaked = os.path.join(str(tmp_path), "deadbeef.tmp")
        with open(leaked, "w", encoding="utf-8") as handle:
            handle.write("x" * 4096)
        assert cache.total_bytes() == live_bytes
        # Young leftovers may belong to an in-flight writer: kept.
        assert cache.evict() == 0
        assert os.path.exists(leaked)
        stamp = time.time() - 2 * TMP_GRACE_SECONDS
        os.utime(leaked, (stamp, stamp))
        assert cache.evict() == 1
        assert not os.path.exists(leaked)
        assert cache.get(key) is not MISS  # live artifacts untouched

    def test_orphaned_sidecar_swept_referenced_one_kept(self, tmp_path):
        from repro.engine.cache import TMP_GRACE_SECONDS
        cache = ResultCache(str(tmp_path))
        key = cache.key_for({"i": 1})
        cache.put(key, {"pool": [float(i) for i in range(32)]}, sidecar=True)
        referenced = os.path.join(str(tmp_path), f"{key}.0.npy")
        orphan = os.path.join(str(tmp_path), "0" * 64 + ".0.npy")
        with open(orphan, "wb") as handle:
            handle.write(b"\x93NUMPY")
        stamp = time.time() - 2 * TMP_GRACE_SECONDS
        os.utime(orphan, (stamp, stamp))
        os.utime(referenced, (stamp, stamp))
        assert cache.evict() == 1
        assert not os.path.exists(orphan)
        assert os.path.exists(referenced)  # has a JSON entry: not an orphan

    def test_clear_sweeps_stale_leftovers(self, tmp_path):
        from repro.engine.cache import TMP_GRACE_SECONDS
        cache = ResultCache(str(tmp_path))
        _put(cache, 1)
        leaked = os.path.join(str(tmp_path), "dead.tmp")
        with open(leaked, "w", encoding="utf-8") as handle:
            handle.write("x")
        stamp = time.time() - 2 * TMP_GRACE_SECONDS
        os.utime(leaked, (stamp, stamp))
        assert cache.clear() == 1
        assert os.listdir(str(tmp_path)) == []
