"""Tests for the ``repro-campaign`` command-line entry point."""

import json

import pytest

from repro.engine.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bare_invocation_exits_2_with_subcommand_list(self, capsys):
        """A bare `repro-campaign` gets the subcommand list on stderr and
        exit status 2, not an argparse required-argument error."""
        assert main([]) == 2
        err = capsys.readouterr().err
        for name in ("run", "calibrate", "campaign", "pipeline",
                     "block-study", "yield-study", "cache"):
            assert name in err
        assert "the following arguments are required" not in err

    def test_version_flag(self, capsys):
        import repro
        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "repro-campaign" in out
        assert repro.__version__ in out

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "study.toml", "--set", "campaign.samples=40",
             "--set", "seed=7", "--workers", "2", "--backend", "shm"])
        assert args.study == "study.toml"
        assert args.set == ["campaign.samples=40", "seed=7"]
        assert args.backend == "shm"
        with pytest.raises(SystemExit):  # the study spec is mandatory
            build_parser().parse_args(["run"])

    def test_mp_context_flag(self):
        from repro.engine.cli import _build_backend
        args = build_parser().parse_args(
            ["campaign", "--workers", "2", "--mp-context", "spawn"])
        assert args.mp_context == "spawn"
        assert _build_backend(args).mp_context == "spawn"
        assert build_parser().parse_args(["campaign"]).mp_context is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["campaign", "--mp-context", "threads"])

    def test_backend_choices(self):
        args = build_parser().parse_args(["campaign", "--backend", "shm"])
        assert args.backend == "shm"
        assert build_parser().parse_args(["campaign"]).backend is None
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", "--backend", "bogus"])

    def test_backend_resolution(self):
        from repro.engine.cli import _build_backend
        assert _build_backend(
            build_parser().parse_args(["campaign"])).name == "serial"
        assert _build_backend(build_parser().parse_args(
            ["campaign", "--workers", "2"])).name == "multiprocess"
        shm = _build_backend(build_parser().parse_args(
            ["campaign", "--workers", "2", "--backend", "shm"]))
        assert shm.name == "shm"
        assert shm.workers == 2
        # an explicit pool backend with --workers 1 still runs a 1-wide pool
        assert _build_backend(build_parser().parse_args(
            ["campaign", "--backend", "shm"])).name == "shm"

    def test_yield_study_defaults(self):
        args = build_parser().parse_args(["yield-study"])
        assert args.k_values == [2.0, 3.0, 4.0, 5.0, 6.0]
        assert args.max_escape_defects == 20
        assert args.workers == 1

    def test_block_study_defaults(self):
        args = build_parser().parse_args(["block-study"])
        assert args.workers == 1
        assert args.samples == 60
        assert args.exhaustive_threshold == 120
        assert args.blocks is None
        assert not args.no_stop_on_detection
        args = build_parser().parse_args(
            ["block-study", "--backend", "shm", "--workers", "2",
             "--blocks", "sc_array", "vcm_generator"])
        assert args.backend == "shm"
        assert args.blocks == ["sc_array", "vcm_generator"]

    def test_batch_size_flag(self):
        for name in ("campaign", "pipeline", "block-study"):
            assert build_parser().parse_args([name]).batch_size == 1
            args = build_parser().parse_args([name, "--batch-size", "64"])
            assert args.batch_size == 64
        with pytest.raises(SystemExit):  # must be a positive int
            build_parser().parse_args(["campaign", "--batch-size", "0"])

    def test_cache_subcommands(self):
        args = build_parser().parse_args(
            ["cache", "stats", "--cache-dir", "c"])
        assert args.cache_command == "stats"
        args = build_parser().parse_args(
            ["cache", "evict", "--cache-dir", "c",
             "--cache-max-age", "60"])
        assert args.cache_command == "evict"
        assert args.cache_max_age == 60.0
        with pytest.raises(SystemExit):  # --cache-dir is mandatory here
            build_parser().parse_args(["cache", "stats"])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.workers == 1
        assert args.cache_dir is None
        assert args.samples == 60
        assert not args.no_stop_on_detection

    def test_calibrate_options(self):
        args = build_parser().parse_args(
            ["calibrate", "--monte-carlo", "7", "--workers", "3", "--k", "4"])
        assert args.monte_carlo == 7
        assert args.workers == 3
        assert args.k == 4.0

    def test_pipeline_defaults(self):
        args = build_parser().parse_args(["pipeline"])
        assert args.workers == 1
        assert args.samples == 60
        assert args.cache_max_bytes is None
        assert args.cache_max_age is None

    def test_cache_eviction_options(self):
        args = build_parser().parse_args(
            ["pipeline", "--cache-dir", "c", "--cache-max-bytes", "1000",
             "--cache-max-age", "3600"])
        assert args.cache_max_bytes == 1000
        assert args.cache_max_age == 3600.0


class TestCalibrateCommand:
    def test_writes_json(self, tmp_path, capsys):
        out = tmp_path / "cal.json"
        status = main(["calibrate", "--monte-carlo", "3",
                       "--json", str(out)])
        assert status == 0
        payload = json.loads(out.read_text())
        assert set(payload["deltas"]) == {"msb_sum", "lsb_sum", "dac_sum",
                                          "preamp_cm", "sign", "latch_sum"}
        assert payload["k"] == 5.0
        assert "SymBIST window calibration" in capsys.readouterr().out


class TestCampaignCommand:
    def test_block_campaign_with_cache_and_workers(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        out = tmp_path / "campaign.json"
        argv = ["campaign", "--blocks", "vcm_generator",
                "--monte-carlo", "3", "--workers", "2",
                "--cache-dir", str(cache_dir), "--json", str(out)]
        assert main(argv) == 0
        cold = json.loads(out.read_text())
        assert cold["blocks"][0]["block"] == "vcm_generator"
        assert cold["blocks"][0]["n_simulated"] == \
            cold["blocks"][0]["n_defects"]
        assert 0.0 <= cold["blocks"][0]["coverage"] <= 1.0
        assert "L-W defect coverage" in capsys.readouterr().out

        # One engine report spans the sweep: graph-wide numbers live at the
        # top level only, never inside the per-block payloads.
        assert "engine" in cold
        assert "engine" not in cold["blocks"][0]
        assert "engine_wall_time" not in cold["blocks"][0]["timing"]

        # Warm rerun: same coverage, everything replayed from the cache.
        assert main(argv) == 0
        warm = json.loads(out.read_text())
        assert warm["blocks"][0]["coverage"] == cold["blocks"][0]["coverage"]
        assert "(100%)" in warm["engine"]

    def test_bare_blocks_flag_means_every_block(self, tmp_path):
        """`--blocks` with no values (argparse yields []) runs all blocks,
        exactly like omitting the flag."""
        out = tmp_path / "out.json"
        assert main(["campaign", "--monte-carlo", "3", "--samples", "5",
                     "--blocks", "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert len(payload["blocks"]) == 10  # every A/M-S block
        assert "engine" in payload

    def test_block_subset_is_order_invariant(self, tmp_path):
        """--blocks A B and --blocks B A simulate the same defects."""
        out = tmp_path / "out.json"
        common = ["campaign", "--monte-carlo", "3", "--seed", "5",
                  "--samples", "10", "--exhaustive-threshold", "20",
                  "--json", str(out)]
        assert main(common + ["--blocks", "vcm_generator",
                              "offset_compensation"]) == 0
        forward = json.loads(out.read_text())
        assert main(common + ["--blocks", "offset_compensation",
                              "vcm_generator"]) == 0
        backward = json.loads(out.read_text())
        by_block = lambda payload: {b["block"]: (b["n_simulated"],
                                                 b["n_detected"],
                                                 b["coverage"])
                                    for b in payload["blocks"]}
        assert by_block(forward) == by_block(backward)


class TestPipelineCommand:
    def test_matches_two_invocation_flow(self, tmp_path, capsys):
        """`pipeline --workers 2` == `calibrate` + `campaign` run serially."""
        pipe_out = tmp_path / "pipe.json"
        camp_out = tmp_path / "camp.json"
        common = ["--monte-carlo", "3", "--blocks", "vcm_generator",
                  "--seed", "1"]
        assert main(["pipeline", "--workers", "2",
                     "--cache-dir", str(tmp_path / "cache"),
                     "--json", str(pipe_out)] + common) == 0
        assert main(["campaign", "--json", str(camp_out)] + common) == 0

        pipe = json.loads(pipe_out.read_text())
        camp = json.loads(camp_out.read_text())
        assert pipe["deltas"] == camp["deltas"]
        for p, c in zip(pipe["blocks"], camp["blocks"]):
            assert p["block"] == c["block"]
            assert p["n_simulated"] == c["n_simulated"]
            assert p["n_detected"] == c["n_detected"]
            assert p["n_escaped"] == c["n_escaped"]
            assert p["coverage"] == c["coverage"]
            assert p["ci_half_width"] == c["ci_half_width"]
        assert "pipeline stage 2" in capsys.readouterr().out

    def test_warm_rerun_is_fully_cached(self, tmp_path, capsys):
        argv = ["pipeline", "--monte-carlo", "3",
                "--blocks", "vcm_generator",
                "--cache-dir", str(tmp_path / "cache"),
                "--json", str(tmp_path / "out.json")]
        assert main(argv) == 0
        cold = json.loads((tmp_path / "out.json").read_text())
        assert main(argv) == 0
        warm = json.loads((tmp_path / "out.json").read_text())
        assert warm["deltas"] == cold["deltas"]
        for w, c in zip(warm["blocks"], cold["blocks"]):
            assert w["n_detected"] == c["n_detected"]
            assert w["coverage"] == c["coverage"]
        assert "(100%)" in warm["engine"]

class TestBlockStudyCommand:
    def test_matches_sequential_campaign_flow(self, tmp_path, capsys):
        """`block-study` == `campaign` (one graph vs calibrate + per-block
        sweep) under the same seed, with the identical JSON schema."""
        study_out = tmp_path / "study.json"
        camp_out = tmp_path / "camp.json"
        common = ["--monte-carlo", "3", "--seed", "1", "--samples", "10",
                  "--exhaustive-threshold", "20",
                  "--blocks", "vcm_generator", "offset_compensation"]
        assert main(["block-study", "--workers", "2",
                     "--json", str(study_out)] + common) == 0
        assert main(["campaign", "--json", str(camp_out)] + common) == 0

        study = json.loads(study_out.read_text())
        camp = json.loads(camp_out.read_text())
        assert study["deltas"] == camp["deltas"]
        assert set(study) == set(camp)  # identical top-level schema
        for s, c in zip(study["blocks"], camp["blocks"]):
            assert set(s) == set(c)  # identical per-block schema
            assert s["block"] == c["block"]
            assert s["n_defects"] == c["n_defects"]
            assert s["n_simulated"] == c["n_simulated"]
            assert s["n_detected"] == c["n_detected"]
            assert s["n_escaped"] == c["n_escaped"]
            assert s["coverage"] == c["coverage"]
            assert s["ci_half_width"] == c["ci_half_width"]
        printed = capsys.readouterr().out
        assert "block-study stage 1" in printed
        assert "stages: " in printed

    def test_batched_run_matches_unbatched(self, tmp_path):
        """`--batch-size N` changes the task decomposition, never the
        per-block numbers."""
        common = ["block-study", "--monte-carlo", "3", "--seed", "1",
                  "--samples", "8", "--exhaustive-threshold", "20",
                  "--blocks", "vcm_generator", "offset_compensation"]
        unbatched_out = tmp_path / "unbatched.json"
        batched_out = tmp_path / "batched.json"
        assert main(common + ["--json", str(unbatched_out)]) == 0
        assert main(common + ["--batch-size", "4",
                              "--json", str(batched_out)]) == 0

        unbatched = json.loads(unbatched_out.read_text())
        batched = json.loads(batched_out.read_text())
        assert batched["deltas"] == unbatched["deltas"]
        for b, u in zip(batched["blocks"], unbatched["blocks"]):
            assert set(b) == set(u)
            for key in ("block", "n_defects", "n_simulated", "n_detected",
                        "n_escaped", "coverage", "ci_half_width"):
                assert b[key] == u[key], key

    def test_warm_rerun_is_fully_cached(self, tmp_path):
        argv = ["block-study", "--monte-carlo", "3",
                "--blocks", "vcm_generator",
                "--cache-dir", str(tmp_path / "cache"),
                "--json", str(tmp_path / "out.json")]
        assert main(argv) == 0
        cold = json.loads((tmp_path / "out.json").read_text())
        assert main(argv) == 0
        warm = json.loads((tmp_path / "out.json").read_text())
        assert warm["deltas"] == cold["deltas"]
        for w, c in zip(warm["blocks"], cold["blocks"]):
            assert w["n_detected"] == c["n_detected"]
            assert w["coverage"] == c["coverage"]
        assert "(100%)" in warm["engine"]


class TestPerBlockJsonSchema:
    def test_identical_keys_across_subcommands(self, tmp_path):
        """campaign, pipeline, yield-study and block-study emit the same
        per-block keys, with the engine report at the top level only."""
        common = ["--monte-carlo", "3", "--seed", "1",
                  "--blocks", "vcm_generator"]
        payloads = {}
        for name, extra in [("campaign", []), ("pipeline", []),
                            ("block-study", []),
                            ("yield-study", ["--k-values", "5",
                                             "--max-escape-defects", "1"])]:
            out = tmp_path / f"{name}.json"
            assert main([name, "--json", str(out)] + common + extra) == 0
            payloads[name] = json.loads(out.read_text())

        block_keys = {name: frozenset(payload["blocks"][0])
                      for name, payload in payloads.items()}
        assert len(set(block_keys.values())) == 1, block_keys
        for name, payload in payloads.items():
            assert "engine" in payload, name
            block = payload["blocks"][0]
            assert "engine" not in block, name
            assert "engine_wall_time" not in block["timing"], name
            assert "cache_hit_rate" not in block["timing"], name
            # Same seed, same draws: the numbers agree across subcommands.
            assert block["coverage"] == \
                payloads["campaign"]["blocks"][0]["coverage"], name
            assert block["n_detected"] == \
                payloads["campaign"]["blocks"][0]["n_detected"], name


class TestRunCommand:
    COMMON = ["--set", "calibrate.n_monte_carlo=3", "--set", "seed=1",
              "--set", "campaign.blocks=vcm_generator"]

    def test_canned_study_matches_legacy_subcommand(self, tmp_path, capsys):
        """`run block-study` == `block-study`: same JSON schema, same
        numbers, from the same canned spec."""
        run_out = tmp_path / "run.json"
        legacy_out = tmp_path / "legacy.json"
        assert main(["run", "block-study", "--json", str(run_out)]
                    + self.COMMON) == 0
        assert main(["block-study", "--monte-carlo", "3", "--seed", "1",
                     "--blocks", "vcm_generator",
                     "--json", str(legacy_out)]) == 0
        run_payload = json.loads(run_out.read_text())
        legacy_payload = json.loads(legacy_out.read_text())
        assert set(run_payload) == set(legacy_payload)
        assert run_payload["deltas"] == legacy_payload["deltas"]
        for r, l in zip(run_payload["blocks"], legacy_payload["blocks"]):
            assert set(r) == set(l)
            assert r["coverage"] == l["coverage"]
            assert r["n_detected"] == l["n_detected"]
        assert "block-study stage 1" in capsys.readouterr().out

    def test_toml_spec_with_set_overrides(self, tmp_path, capsys):
        from repro.engine import CALIBRATE_THEN_CAMPAIGN
        spec_path = tmp_path / "study.toml"
        spec_path.write_text(CALIBRATE_THEN_CAMPAIGN.to_toml())
        out = tmp_path / "out.json"
        assert main(["run", str(spec_path), "--json", str(out),
                     "--set", "campaign.samples=10",
                     "--set", "campaign.exhaustive_threshold=20"]
                    + self.COMMON) == 0
        payload = json.loads(out.read_text())
        assert payload["seed"] == 1
        assert [b["block"] for b in payload["blocks"]] == ["vcm_generator"]
        assert payload["blocks"][0]["n_simulated"] == 10  # samples override
        assert "engine" in payload
        assert "calibrate-then-campaign stage 1" in capsys.readouterr().out

    def test_bad_set_assignment_is_actionable(self, capsys):
        assert main(["run", "block-study", "--set", "bogus"]) == 1
        assert "KEY=VALUE" in capsys.readouterr().err
        assert main(["run", "block-study", "--set", "nope.k=1"]) == 1
        assert "known stages" in capsys.readouterr().err

    def test_unknown_study_names_the_canned_ones(self, capsys):
        assert main(["run", "missing.toml"]) == 1
        err = capsys.readouterr().err
        assert "missing.toml" in err
        assert "yield-loss-study" in err


class TestYieldStudyCommand:
    def test_end_to_end_on_shm_backend(self, tmp_path, capsys):
        out = tmp_path / "study.json"
        common = ["yield-study", "--monte-carlo", "3",
                  "--blocks", "vcm_generator", "--k-values", "3", "5",
                  "--max-escape-defects", "2",
                  "--cache-dir", str(tmp_path / "cache"),
                  "--json", str(out)]
        assert main(common + ["--workers", "2", "--backend", "shm"]) == 0
        cold = json.loads(out.read_text())
        assert [p["k"] for p in cold["yield_loss"]] == [3.0, 5.0]
        assert all(p["analytic_ppm"] > 0 for p in cold["yield_loss"])
        assert cold["escapes"]["n_analyzed"] <= 2
        assert cold["escapes"]["n_analyzed"] == \
            cold["escapes"]["n_functional_escapes"] + \
            cold["escapes"]["n_benign"]
        printed = capsys.readouterr().out
        assert "yield loss versus k" in printed
        assert "escape analysis:" in printed
        assert "via shm" in printed

        # Warm serial rerun must replay the shm run's artifacts bit-for-bit.
        assert main(common) == 0
        warm = json.loads(out.read_text())
        assert warm["yield_loss"] == cold["yield_loss"]
        assert warm["escapes"] == cold["escapes"]
        assert warm["deltas"] == cold["deltas"]
        assert "(100%)" in warm["engine"]


class TestCacheCommand:
    def _warm_cache(self, tmp_path):
        cache_dir = tmp_path / "cache"
        assert main(["calibrate", "--monte-carlo", "3",
                     "--cache-dir", str(cache_dir)]) == 0
        return cache_dir

    def test_stats_reports_footprint(self, tmp_path, capsys):
        cache_dir = self._warm_cache(tmp_path)
        out = tmp_path / "stats.json"
        assert main(["cache", "stats", "--cache-dir", str(cache_dir),
                     "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["artifacts"] == 3
        assert payload["total_bytes"] > 0
        assert payload["oldest_age"] >= payload["newest_age"] >= 0
        assert f"3 artifacts" in capsys.readouterr().out

    def test_stats_counts_expired(self, tmp_path, capsys):
        cache_dir = self._warm_cache(tmp_path)
        assert main(["cache", "stats", "--cache-dir", str(cache_dir),
                     "--cache-max-age", "0.000001"]) == 0
        assert "expired" in capsys.readouterr().out

    def test_evict_applies_bounds(self, tmp_path, capsys):
        cache_dir = self._warm_cache(tmp_path)
        out = tmp_path / "evict.json"
        assert main(["cache", "evict", "--cache-dir", str(cache_dir),
                     "--cache-max-age", "0.000001",
                     "--json", str(out)]) == 0
        payload = json.loads(out.read_text())
        assert payload["evicted"] == 3
        assert payload["artifacts"] == 0
        assert "evicted 3 artifacts" in capsys.readouterr().out

    def test_evict_requires_a_bound(self, tmp_path, capsys):
        assert main(["cache", "evict",
                     "--cache-dir", str(tmp_path / "cache")]) == 1
        assert "at least one bound" in capsys.readouterr().err


class TestPipelineCacheSharing:
    def test_calibrate_artifacts_are_shared_with_pipeline(self, tmp_path):
        """`calibrate --cache-dir X` warms the pipeline's calibrate stage."""
        cache = str(tmp_path / "cache")
        common = ["--monte-carlo", "3", "--seed", "1", "--cache-dir", cache]
        assert main(["calibrate"] + common) == 0
        out = tmp_path / "out.json"
        assert main(["pipeline", "--blocks", "vcm_generator",
                     "--json", str(out)] + common) == 0
        engine = json.loads(out.read_text())["engine"]
        # 3 Monte Carlo parents replayed from the standalone calibrate run.
        assert "3 cached" in engine


class TestWarehouseCommand:
    def _study_with_warehouse(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        db = str(tmp_path / "wh.sqlite")
        out = tmp_path / "blocks.json"
        assert main(["block-study", "--monte-carlo", "3", "--seed", "3",
                     "--samples", "4", "--blocks", "vcm_generator",
                     "offset_compensation", "--cache-dir", cache_dir,
                     "--warehouse", db, "--json", str(out),
                     "--quiet"]) == 0
        return cache_dir, db, json.loads(out.read_text())

    def test_warehouse_flag_requires_cache_dir(self, tmp_path, capsys):
        assert main(["block-study", "--monte-carlo", "3",
                     "--blocks", "vcm_generator",
                     "--warehouse", str(tmp_path / "wh.sqlite")]) == 1
        assert "--cache-dir" in capsys.readouterr().err

    def test_run_with_warehouse_answers_canned_query(self, tmp_path,
                                                     capsys):
        _, db, payload = self._study_with_warehouse(tmp_path)
        out = tmp_path / "coverage.json"
        assert main(["warehouse", "query", "per-block-coverage",
                     "--db", db, "--json", str(out), "--quiet"]) == 0
        report = json.loads(out.read_text())
        rows = [dict(zip(report["headers"], row))
                for row in report["rows"]]
        expected = {entry["block"]: entry for entry in payload["blocks"]}
        assert {row["block"] for row in rows} == set(expected)
        for row in rows:
            for column in ("n_defects", "n_simulated", "n_detected",
                           "n_escaped", "coverage", "ci_half_width"):
                assert row[column] == expected[row["block"]][column]

    def test_offline_index_backfills_equal_rows(self, tmp_path):
        cache_dir, db, _ = self._study_with_warehouse(tmp_path)
        db2 = str(tmp_path / "wh2.sqlite")
        out = tmp_path / "index.json"
        assert main(["warehouse", "index", cache_dir, "--db", db2,
                     "--study", "block-study", "--json", str(out),
                     "--quiet"]) == 0
        assert json.loads(out.read_text())["rows"] > 0
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        for target, path in ((db, a), (db2, b)):
            assert main(["warehouse", "query", "per-block-coverage",
                         "--db", target, "--json", str(path),
                         "--quiet"]) == 0
        assert json.loads(a.read_text())["rows"] == \
            json.loads(b.read_text())["rows"]

    def test_sql_passthrough_is_read_only(self, tmp_path, capsys):
        _, db, _ = self._study_with_warehouse(tmp_path)
        out = tmp_path / "sql.json"
        assert main(["warehouse", "sql",
                     "SELECT COUNT(*) AS n FROM results",
                     "--db", db, "--json", str(out), "--quiet"]) == 0
        assert json.loads(out.read_text())["rows"][0][0] > 0
        assert main(["warehouse", "sql", "DELETE FROM results",
                     "--db", db]) == 1
        assert "readonly" in capsys.readouterr().err

    def test_query_missing_db_is_actionable(self, tmp_path, capsys):
        assert main(["warehouse", "query", "per-block-coverage",
                     "--db", str(tmp_path / "absent.sqlite")]) == 1
        assert "does not exist" in capsys.readouterr().err

    def test_unknown_report_is_actionable(self, tmp_path, capsys):
        _, db, _ = self._study_with_warehouse(tmp_path)
        assert main(["warehouse", "query", "nope", "--db", db]) == 1
        assert "per-block-coverage" in capsys.readouterr().err
