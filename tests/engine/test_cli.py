"""Tests for the ``repro-campaign`` command-line entry point."""

import json

import pytest

from repro.engine.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.workers == 1
        assert args.cache_dir is None
        assert args.samples == 60
        assert not args.no_stop_on_detection

    def test_calibrate_options(self):
        args = build_parser().parse_args(
            ["calibrate", "--monte-carlo", "7", "--workers", "3", "--k", "4"])
        assert args.monte_carlo == 7
        assert args.workers == 3
        assert args.k == 4.0


class TestCalibrateCommand:
    def test_writes_json(self, tmp_path, capsys):
        out = tmp_path / "cal.json"
        status = main(["calibrate", "--monte-carlo", "3",
                       "--json", str(out)])
        assert status == 0
        payload = json.loads(out.read_text())
        assert set(payload["deltas"]) == {"msb_sum", "lsb_sum", "dac_sum",
                                          "preamp_cm", "sign", "latch_sum"}
        assert payload["k"] == 5.0
        assert "SymBIST window calibration" in capsys.readouterr().out


class TestCampaignCommand:
    def test_block_campaign_with_cache_and_workers(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        out = tmp_path / "campaign.json"
        argv = ["campaign", "--blocks", "vcm_generator",
                "--monte-carlo", "3", "--workers", "2",
                "--cache-dir", str(cache_dir), "--json", str(out)]
        assert main(argv) == 0
        cold = json.loads(out.read_text())
        assert cold["blocks"][0]["block"] == "vcm_generator"
        assert cold["blocks"][0]["n_simulated"] == \
            cold["blocks"][0]["n_defects"]
        assert 0.0 <= cold["blocks"][0]["coverage"] <= 1.0
        assert "L-W defect coverage" in capsys.readouterr().out

        # Warm rerun: same coverage, everything replayed from the cache.
        assert main(argv) == 0
        warm = json.loads(out.read_text())
        assert warm["blocks"][0]["coverage"] == cold["blocks"][0]["coverage"]
        assert "100% " in warm["blocks"][0]["engine"] \
            or "(100%)" in warm["blocks"][0]["engine"]
