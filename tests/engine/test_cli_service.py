"""The service-facing CLI subcommands and the engine hooks they ride on.

``serve``/``worker``/``submit``/``status``/``attach``/``cancel``/
``shutdown`` are thin shells over :mod:`repro.service`, but their argument
wiring, console output and exit codes live in :mod:`repro.engine.cli` --
and the two engine primitives the daemon is built on, the cooperative
``cancel`` probe of :meth:`CampaignEngine.run` and the live trace tail
:func:`follow_trace`, live in the engine proper.  Exercised here against
an embedded serial daemon.
"""

import json
import os
import threading
import time

import pytest

from repro.circuit.errors import EngineError
from repro.engine import (CampaignEngine, JsonlTraceSink, STATUS_EXECUTED,
                          STATUS_SKIPPED, Task, TaskGraph, TelemetryBus,
                          TelemetryEvent, follow_trace)
from repro.engine.cli import _service_address, build_parser, main

TINY_STUDY = {
    "name": "tiny", "seed": 7,
    "stages": [
        {"stage": "calibrate", "params": {"n_monte_carlo": 2}},
        {"stage": "windows", "after": ["calibrate"]},
        {"stage": "campaign", "after": ["windows"],
         "params": {"blocks": ["offset_compensation"], "samples": 3,
                    "exhaustive_threshold": 5}},
    ],
}


# ======================================================= engine cancel probe

def _payload_worker(context, task, rng, inputs=None):
    # graph runs pass parent results as `inputs`; flat runs pass nothing
    if not inputs:
        return task.payload
    return max(inputs.values()) + 1


class TestCancelProbe:
    def test_cancel_before_start_skips_everything(self):
        graph = TaskGraph([Task(task_id=f"t{i}", payload=i)
                           for i in range(4)])
        run = CampaignEngine().run(graph, _payload_worker,
                                   cancel=lambda: True)
        assert run.cancelled
        assert all(status == STATUS_SKIPPED
                   for status in run.statuses.values())
        assert run.report.n_skipped == 4

    def test_cancel_mid_run_drains_in_flight_and_skips_the_rest(self):
        done = []

        def worker(context, task, rng, inputs):
            done.append(task.task_id)
            return _payload_worker(context, task, rng, inputs)

        graph = TaskGraph([Task(task_id="a", payload=1),
                           Task(task_id="b", depends_on=("a",)),
                           Task(task_id="c", depends_on=("b",)),
                           Task(task_id="d", depends_on=("c",))])
        run = CampaignEngine().run(graph, worker,
                                   cancel=lambda: "b" in done)
        assert run.cancelled
        assert run.statuses["a"] == STATUS_EXECUTED
        assert run.statuses["d"] == STATUS_SKIPPED
        assert "d" not in done  # never dispatched

    def test_cancelled_run_is_not_a_failure(self):
        # on_failure="raise" (the default) must not raise for a cancel:
        # skipped-by-cancel is not an error state.
        graph = TaskGraph([Task(task_id="t")])
        run = CampaignEngine().run(graph, _payload_worker,
                                   cancel=lambda: True)
        assert run.cancelled and not run.errors

    def test_uncancelled_probe_changes_nothing(self):
        graph = TaskGraph([Task(task_id=f"t{i}", payload=i)
                           for i in range(3)])
        plain = CampaignEngine().run(graph, _payload_worker)
        probed = CampaignEngine().run(graph, _payload_worker,
                                      cancel=lambda: False)
        assert not probed.cancelled
        assert probed.results == plain.results


# ============================================================= follow_trace

def _event_line(event_type, t, **kwargs):
    return json.dumps(TelemetryEvent(type=event_type, t=t,
                                     **kwargs).to_jsonable()) + "\n"


class TestFollowTrace:
    def test_follows_a_complete_trace_to_run_finished(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = TelemetryBus([JsonlTraceSink(path)])
        graph = TaskGraph([Task(task_id="a", payload=2),
                           Task(task_id="b", depends_on=("a",))])
        CampaignEngine(telemetry=bus).run(graph, _payload_worker)
        bus.close()

        events = list(follow_trace(path))
        assert events[0].type == "run_started"
        assert events[-1].type == "run_finished"
        assert any(event.type == "task_completed" for event in events)

    def test_live_tail_sees_events_as_they_are_appended(self, tmp_path):
        path = tmp_path / "trace.jsonl"

        def writer():
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(_event_line("run_started", 0.0))
                handle.flush()
                time.sleep(0.3)
                handle.write(_event_line("run_finished", 1.0))

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            events = list(follow_trace(path, poll_interval=0.02,
                                       timeout=10.0))
        finally:
            thread.join()
        assert [event.type for event in events] == ["run_started",
                                                    "run_finished"]

    def test_stop_is_honoured_only_after_the_file_is_drained(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(_event_line("run_started", 0.0) +
                        _event_line("task_completed", 0.5, task_id="t"),
                        encoding="utf-8")
        stop = threading.Event()
        stop.set()  # raised before following even starts
        events = list(follow_trace(path, stop=stop, poll_interval=0.02))
        assert [event.type for event in events] == ["run_started",
                                                    "task_completed"]

    def test_timeout_bounds_a_missing_file(self, tmp_path):
        start = time.monotonic()
        events = list(follow_trace(tmp_path / "never.jsonl", timeout=0.2,
                                   poll_interval=0.02))
        assert events == []
        assert time.monotonic() - start < 5.0

    def test_garbage_line_is_an_error(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text("not a telemetry event\n", encoding="utf-8")
        stop = threading.Event()
        stop.set()
        with pytest.raises(EngineError, match="not a telemetry event"):
            list(follow_trace(path, stop=stop))


# ===================================================== service CLI commands

class TestServiceParser:
    def test_default_control_address_lives_in_the_state_dir(self):
        args = build_parser().parse_args(["status", "--state-dir", "svc"])
        assert _service_address(args) == \
            "unix:" + os.path.join("svc", "control.sock")

    def test_explicit_control_address_wins(self):
        args = build_parser().parse_args(
            ["status", "--state-dir", "svc", "--control",
             "tcp:127.0.0.1:7777"])
        assert _service_address(args) == "tcp:127.0.0.1:7777"

    def test_serve_options(self):
        args = build_parser().parse_args(
            ["serve", "--state-dir", "svc", "--serial",
             "--max-concurrent", "3", "--task-timeout", "5"])
        assert args.serial and args.max_concurrent == 3
        assert args.task_timeout == 5.0

    def test_worker_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A daemon started through the real ``serve`` subcommand (in a
    thread), plus a spec file to submit; torn down via ``shutdown``."""
    root = tmp_path_factory.mktemp("cli-service")
    state_dir = str(root / "svc")
    spec_path = str(root / "tiny.json")
    with open(spec_path, "w", encoding="utf-8") as handle:
        json.dump(TINY_STUDY, handle)

    thread = threading.Thread(
        target=main, args=(["serve", "--state-dir", state_dir, "--serial",
                            "--quiet"],), daemon=True)
    thread.start()
    control = os.path.join(state_dir, "control.sock")
    deadline = time.monotonic() + 30.0
    while not os.path.exists(control) and time.monotonic() < deadline:
        time.sleep(0.02)
    assert os.path.exists(control), "serve never opened its control socket"

    yield {"state_dir": state_dir, "spec": spec_path, "thread": thread}

    main(["shutdown", "--state-dir", state_dir, "--quiet"])
    thread.join(timeout=30.0)


class TestServiceCommands:
    def test_submit_wait_writes_the_result_payload(self, served, tmp_path):
        out = tmp_path / "result.json"
        assert main(["submit", served["spec"], "--state-dir",
                     served["state_dir"], "--wait", "--json",
                     str(out)]) == 0
        payload = json.loads(out.read_text(encoding="utf-8"))
        assert payload["seed"] == TINY_STUDY["seed"]
        assert payload["blocks"][0]["block"] == "offset_compensation"

    def test_submit_with_overrides_and_no_wait(self, served, capsys):
        assert main(["submit", served["spec"], "--state-dir",
                     served["state_dir"], "--set", "seed=11"]) == 0
        assert "submitted 'tiny' as s" in capsys.readouterr().out

    def test_status_lists_studies_and_shows_one(self, served, capsys,
                                                tmp_path):
        assert main(["status", "--state-dir", served["state_dir"]]) == 0
        listing = capsys.readouterr().out
        assert "campaign daemon studies" in listing
        assert "s0001-tiny" in listing

        out = tmp_path / "status.json"
        assert main(["status", "s0001-tiny", "--state-dir",
                     served["state_dir"], "--json", str(out)]) == 0
        record = json.loads(out.read_text(encoding="utf-8"))
        assert record["state"] == "done"
        assert record["result"]["blocks"]

    def test_attach_replays_the_trace_and_exits_zero(self, served, capsys):
        assert main(["attach", "s0001-tiny", "--state-dir",
                     served["state_dir"]]) == 0
        lines = [json.loads(line) for line
                 in capsys.readouterr().out.splitlines()
                 if line.startswith("{")]
        assert lines[0]["type"] == "run_started"
        assert lines[-1]["type"] == "run_finished"

    def test_cancel_reports_the_state_it_saw(self, served, capsys):
        assert main(["cancel", "s0001-tiny", "--state-dir",
                     served["state_dir"]]) == 0
        assert "(was done)" in capsys.readouterr().out

    def test_unknown_study_is_a_clean_cli_error(self, served):
        assert main(["status", "s9999-nope", "--state-dir",
                     served["state_dir"]]) == 1

    def test_client_commands_fail_cleanly_without_a_daemon(self, tmp_path):
        assert main(["status", "--state-dir",
                     str(tmp_path / "no-daemon")]) == 1


class TestWorkerCommand:
    def test_worker_subcommand_serves_a_socket_backend(self):
        import functools
        import operator

        from repro.service import SocketBackend

        with SocketBackend("tcp:127.0.0.1:0", worker_wait=30.0) as backend:
            thread = threading.Thread(
                target=main, args=(["worker", "--connect", backend.address,
                                    "--max-tasks", "4", "--quiet"],),
                daemon=True)
            thread.start()
            triple = functools.partial(operator.mul, 3)
            assert backend.map_items(triple, [1, 2, 3, 4]) == [3, 6, 9, 12]
            thread.join(timeout=30.0)
            assert not thread.is_alive()
