"""Serial-vs-parallel bit-identity and cache behaviour of the drivers.

These tests pin the engine's core guarantee at the workload level: a defect
campaign, a window calibration or a Monte Carlo run sharded across a process
pool produces results byte-identical to the serial run, and a warm cache
replays them near-instantly.
"""

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.analysis import MonteCarloRunner, yield_loss_sweep
from repro.core import calibrate_windows, collect_defect_free_residuals
from repro.defects import DefectCampaign, SamplingPlan
from repro.engine import MultiprocessBackend, ResultCache, SerialBackend


def record_key(result):
    """Everything that matters about a campaign, as comparable tuples."""
    return [(r.defect.defect_id, r.detected, r.detecting_invariance,
             r.detection_cycle, r.cycles_run, r.modeled_sim_time)
            for r in result.records]


def vbg_evaluate(adc, index):
    """Module-level Monte Carlo evaluation (picklable for the pool)."""
    return adc.operating_point().vbg


def vdd_evaluate(adc, index):
    """A second module-level evaluation with its own cache identity."""
    return adc.operating_point().vbg * 2.0


def numpy_evaluate(adc, index):
    """Evaluation returning a non-JSON numpy scalar (needs a codec)."""
    import numpy
    return numpy.float64(adc.operating_point().vbg)


class TestCampaignEquivalence:
    def test_exhaustive_block_campaign_identical(self, campaign):
        serial = campaign.run(SamplingPlan(exhaustive=True),
                              blocks=["vcm_generator"])
        parallel = campaign.run(SamplingPlan(exhaustive=True),
                                blocks=["vcm_generator"],
                                backend=MultiprocessBackend(max_workers=2))
        assert record_key(parallel) == record_key(serial)

    def test_lwrs_campaign_100_defects_4_workers_identical(self, campaign):
        """Acceptance criterion: >=100 LWRS defects, 4 workers, identical."""
        plan = SamplingPlan(exhaustive=False, n_samples=100)
        serial = campaign.run(plan, rng=np.random.default_rng(11))
        parallel = campaign.run(plan, rng=np.random.default_rng(11),
                                backend=MultiprocessBackend(max_workers=4))
        assert serial.n_simulated == 100
        assert record_key(parallel) == record_key(serial)
        assert parallel.overall_report().coverage.value == \
            serial.overall_report().coverage.value
        assert parallel.engine_report.workers == 4

    def test_warm_cache_replays_identically_and_fast(self, campaign, tmp_path):
        """Acceptance criterion: warm rerun <10% of the cold wall-clock."""
        cache = ResultCache(str(tmp_path / "cache"), namespace="defects")
        plan = SamplingPlan(exhaustive=False, n_samples=100)
        cold = campaign.run(plan, rng=np.random.default_rng(11), cache=cache)
        warm = campaign.run(plan, rng=np.random.default_rng(11), cache=cache)
        assert record_key(warm) == record_key(cold)
        assert warm.engine_report.n_cache_hits == 100
        assert warm.engine_report.n_executed == 0
        assert warm.engine_report.wall_time < \
            0.1 * cold.engine_report.wall_time

    def test_cache_invalidated_by_spec_change(self, deltas, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), namespace="defects")
        stop = DefectCampaign(adc=SarAdc(), deltas=deltas,
                              stop_on_detection=True)
        full = DefectCampaign(adc=SarAdc(), deltas=deltas,
                              stop_on_detection=False)
        first = stop.run(SamplingPlan(exhaustive=True),
                         blocks=["vcm_generator"], cache=cache)
        second = full.run(SamplingPlan(exhaustive=True),
                          blocks=["vcm_generator"], cache=cache)
        # stop_on_detection is part of the task spec: nothing may be reused.
        assert second.engine_report.n_cache_hits == 0
        assert any(f.cycles_run < s.cycles_run
                   for f, s in zip(first.records, second.records)
                   if f.detected)

    def test_cache_keyed_on_current_adc_state(self, deltas, tmp_path):
        """Mutating the IP after construction must invalidate cache keys."""
        cache = ResultCache(str(tmp_path / "cache"), namespace="defects")
        adc = SarAdc()
        campaign = DefectCampaign(adc=adc, deltas=deltas)
        pristine = campaign.run(SamplingPlan(exhaustive=True),
                                blocks=["rs_latch"], cache=cache)
        adc.sample_variation(np.random.default_rng(0), None)
        varied = campaign.run(SamplingPlan(exhaustive=True),
                              blocks=["rs_latch"], cache=cache)
        assert pristine.engine_report.n_cache_hits == 0
        assert varied.engine_report.n_cache_hits == 0

    def test_likelihood_model_partitions_cache(self, deltas, tmp_path):
        """Cached records carry defect likelihoods, so campaigns under
        different likelihood models must never share artifacts."""
        from repro.defects import DefectKind, LikelihoodModel
        cache = ResultCache(str(tmp_path / "cache"), namespace="defects")
        default = DefectCampaign(adc=SarAdc(), deltas=deltas)
        skewed = DefectCampaign(
            adc=SarAdc(), deltas=deltas,
            likelihood_model=LikelihoodModel(block_scale={"rs_latch": 7.0}))
        base = default.run(SamplingPlan(exhaustive=True), blocks=["rs_latch"],
                           cache=cache)
        replay = skewed.run(SamplingPlan(exhaustive=True), blocks=["rs_latch"],
                            cache=cache)
        assert replay.engine_report.n_cache_hits == 0
        # The skewed campaign's records must carry its own (7x) priors.
        for base_rec, skew_rec in zip(base.records, replay.records):
            assert skew_rec.defect.likelihood == \
                pytest.approx(7.0 * base_rec.defect.likelihood)

    def test_progress_reports_cache_hits(self, campaign, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), namespace="defects")
        campaign.run(SamplingPlan(exhaustive=True), blocks=["rs_latch"],
                     cache=cache)
        seen = []
        campaign.run(SamplingPlan(exhaustive=True), blocks=["rs_latch"],
                     cache=cache,
                     progress=lambda i, n, rec: seen.append((i, n)))
        universe_size = len(campaign.universe.by_block("rs_latch"))
        assert len(seen) == universe_size
        assert seen[-1][1] == universe_size

    def test_engine_report_attached(self, campaign):
        result = campaign.run(SamplingPlan(exhaustive=True),
                              blocks=["rs_latch"])
        assert result.engine_report is not None
        assert result.engine_report.n_tasks == result.n_simulated
        timing = result.timing_summary()
        assert timing["wall_time"] > 0
        assert timing["modeled_sim_time"] > 0
        assert "engine_wall_time" in timing


class TestCalibrationEquivalence:
    def test_residual_pools_identical_across_backends(self):
        serial = collect_defect_free_residuals(
            n_monte_carlo=6, rng=np.random.default_rng(5))
        parallel = collect_defect_free_residuals(
            n_monte_carlo=6, rng=np.random.default_rng(5),
            backend=MultiprocessBackend(max_workers=3))
        assert serial == parallel

    def test_calibration_identical_across_backends(self):
        serial = calibrate_windows(n_monte_carlo=5,
                                   rng=np.random.default_rng(3))
        parallel = calibrate_windows(n_monte_carlo=5,
                                     rng=np.random.default_rng(3),
                                     backend=MultiprocessBackend(max_workers=2))
        assert serial.deltas == parallel.deltas
        assert serial.sigmas == parallel.sigmas

    def test_calibration_cache_round_trip(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), namespace="calibration")
        cold = calibrate_windows(n_monte_carlo=4,
                                 rng=np.random.default_rng(3), cache=cache)
        warm = calibrate_windows(n_monte_carlo=4,
                                 rng=np.random.default_rng(3), cache=cache)
        assert cold.deltas == warm.deltas
        assert len(cache) == 4
        # A different rng seed must not reuse the artifacts.
        other = calibrate_windows(n_monte_carlo=4,
                                  rng=np.random.default_rng(4), cache=cache)
        assert len(cache) == 8
        assert other.deltas != cold.deltas

    def test_custom_invariances_never_cached(self, tmp_path, invariances):
        cache = ResultCache(str(tmp_path / "cache"), namespace="calibration")
        collect_defect_free_residuals(invariances=list(invariances),
                                      n_monte_carlo=2,
                                      rng=np.random.default_rng(0),
                                      cache=cache)
        assert len(cache) == 0


class TestMonteCarloEquivalence:
    def test_samples_independent_of_backend(self):
        serial = MonteCarloRunner(seed=7).run(vbg_evaluate, 8)
        parallel = MonteCarloRunner(
            seed=7, backend=MultiprocessBackend(max_workers=2)).run(
            vbg_evaluate, 8)
        assert serial.samples == parallel.samples
        assert parallel.engine_report.backend == "multiprocess"

    def test_samples_independent_of_sample_count_prefix(self):
        """Per-sample SeedSequence children: sample i does not depend on how
        many samples run before or after it."""
        short = MonteCarloRunner(seed=7).run(vbg_evaluate, 4)
        long = MonteCarloRunner(seed=7).run(vbg_evaluate, 8)
        assert long.samples[:4] == short.samples

    def test_cached_run_with_spec(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), namespace="mc")
        runner = MonteCarloRunner(seed=7, cache=cache)
        cold = runner.run(vbg_evaluate, 5, spec={"metric": "vbg"})
        warm = runner.run(vbg_evaluate, 5, spec={"metric": "vbg"})
        assert cold.samples == warm.samples
        assert warm.engine_report.n_cache_hits == 5

    def test_cache_prefix_reused_across_sample_counts(self, tmp_path):
        """Per-sample seeding: a longer run reuses a shorter run's prefix."""
        cache = ResultCache(str(tmp_path / "cache"), namespace="mc")
        runner = MonteCarloRunner(seed=7, cache=cache)
        short = runner.run(vbg_evaluate, 4, spec={"metric": "vbg"})
        longer = runner.run(vbg_evaluate, 8, spec={"metric": "vbg"})
        assert longer.engine_report.n_cache_hits == 4
        assert longer.samples[:4] == short.samples

    def test_evaluate_identity_partitions_cache(self, tmp_path):
        """Two evaluations sharing a user spec must not share artifacts."""
        cache = ResultCache(str(tmp_path / "cache"), namespace="mc")
        runner = MonteCarloRunner(seed=7, cache=cache)
        runner.run(vbg_evaluate, 3, spec={"metric": "shared"})
        second = runner.run(vdd_evaluate, 3, spec={"metric": "shared"})
        assert second.engine_report.n_cache_hits == 0
        assert len(cache) == 6

    def test_codec_enables_caching_non_json_samples(self, tmp_path):
        import numpy
        from repro.engine import ResultCodec
        cache = ResultCache(str(tmp_path / "cache"), namespace="mc")
        codec = ResultCodec(encode=float, decode=numpy.float64)
        runner = MonteCarloRunner(seed=7, cache=cache)
        cold = runner.run(numpy_evaluate, 3, spec={"metric": "vbg"},
                          codec=codec)
        warm = runner.run(numpy_evaluate, 3, spec={"metric": "vbg"},
                          codec=codec)
        assert warm.engine_report.n_cache_hits == 3
        assert [float(s) for s in warm.samples] == \
            [float(s) for s in cold.samples]

    def test_variation_spec_partitions_cache(self, tmp_path):
        """A different variation spec must never replay cached samples."""
        from repro.circuit import VariationSpec
        cache = ResultCache(str(tmp_path / "cache"), namespace="mc")
        nominal = MonteCarloRunner(seed=7, cache=cache)
        wide = MonteCarloRunner(
            seed=7, cache=cache,
            variation_spec=VariationSpec(resistor_global_sigma=0.15))
        nominal.run(vbg_evaluate, 3, spec={"metric": "vbg"})
        second = wide.run(vbg_evaluate, 3, spec={"metric": "vbg"})
        assert second.engine_report.n_cache_hits == 0
        assert len(cache) == 6  # disjoint artifact sets, nothing shared


class TestYieldLossEquivalence:
    def test_sweep_identical_across_backends(self, calibration):
        k_values = (2.0, 4.0, 6.0)
        serial = yield_loss_sweep(calibration, k_values=k_values)
        parallel = yield_loss_sweep(calibration, k_values=k_values,
                                    backend=MultiprocessBackend(max_workers=2))
        assert serial == parallel

    def test_sweep_cache_round_trip(self, calibration, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"), namespace="yield")
        cold = yield_loss_sweep(calibration, k_values=(3.0, 5.0), cache=cache)
        warm = yield_loss_sweep(calibration, k_values=(3.0, 5.0), cache=cache)
        assert cold == warm
        assert len(cache) == 2
