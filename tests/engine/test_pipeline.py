"""Tests for dependency-aware task graphs and the Pipeline API."""

import numpy as np
import pytest

from repro.circuit import EngineError, TaskExecutionError
from repro.engine import (CampaignEngine, MultiprocessBackend, Pipeline,
                          ResultCache, STATUS_CACHED, STATUS_EXECUTED,
                          STATUS_FAILED, STATUS_SKIPPED, SerialBackend,
                          SharedMemoryBackend, Task, TaskGraph, block_study,
                          build_block_study, build_calibrate_then_campaign,
                          build_yield_loss_study, calibrate_then_campaign,
                          yield_loss_study)


# ------------------------------------------------------------- graph workers
# Module-level so the multiprocess backend can pickle them.

def _sum_worker(context, task, rng, inputs):
    """Roots return their payload; reducers sum their parents."""
    if not inputs:
        return task.payload
    return sum(inputs.values())


def _noisy_worker(context, task, rng, inputs):
    base = sum(inputs.values()) if inputs else 0.0
    return base + float(rng.normal())


def _failing_worker(context, task, rng, inputs):
    if task.payload == "fail":
        raise ValueError("injected failure")
    return sum(inputs.values()) if inputs else 1


def _recording_worker(context, task, rng, inputs):
    context.append(task.task_id)
    if task.payload == "fail":
        raise ValueError("injected failure")
    return task.task_id


def _flat_worker(context, task, rng):
    """Flat-graph (3-argument) worker contract."""
    if task.payload == "fail":
        raise ValueError("injected failure")
    return 1


def _diamond() -> TaskGraph:
    return TaskGraph([
        Task(task_id="a", payload=1),
        Task(task_id="b", payload=10, depends_on=("a",)),
        Task(task_id="c", payload=100, depends_on=("a",)),
        Task(task_id="d", depends_on=("b", "c")),
    ])


class TestTaskEdges:
    def test_depends_on_normalised_to_tuple(self):
        task = Task(task_id="t", depends_on=["a", "b"])
        assert task.depends_on == ("a", "b")

    def test_rejects_self_dependency(self):
        with pytest.raises(EngineError):
            Task(task_id="t", depends_on=("t",))

    def test_rejects_duplicate_dependency(self):
        with pytest.raises(EngineError):
            Task(task_id="t", depends_on=("a", "a"))


class TestTaskGraphEdges:
    def test_parents_must_exist(self):
        graph = TaskGraph()
        with pytest.raises(EngineError):
            graph.add(Task(task_id="child", depends_on=("missing",)))

    def test_edge_accessors(self):
        graph = _diamond()
        assert graph.has_edges
        assert graph.dependencies("d") == ("b", "c")
        assert graph.dependents("a") == ["b", "c"]
        assert graph.roots() == ["a"]
        assert graph.descendants("a") == ["b", "c", "d"]
        assert graph.descendants("b") == ["d"]
        assert graph.topological_order() == ["a", "b", "c", "d"]

    def test_flat_graph_has_no_edges(self):
        graph = TaskGraph([Task(task_id="x"), Task(task_id="y")])
        assert not graph.has_edges
        assert graph.roots() == ["x", "y"]


class TestGraphExecution:
    def test_dependents_receive_parent_results(self):
        run = CampaignEngine().run(_diamond(), _sum_worker)
        assert run.results == [1, 1, 1, 2]  # b = c = a; d = b + c
        assert run.ok
        assert all(status == STATUS_EXECUTED
                   for status in run.statuses.values())

    def test_serial_and_multiprocess_runs_are_identical(self):
        graph = TaskGraph(
            [Task(task_id=f"root/{i}") for i in range(6)]
            + [Task(task_id="total",
                    depends_on=tuple(f"root/{i}" for i in range(6)))])
        serial = CampaignEngine(backend=SerialBackend(), seed=7) \
            .run(graph, _noisy_worker)
        parallel = CampaignEngine(
            backend=MultiprocessBackend(max_workers=3), seed=7) \
            .run(graph, _noisy_worker)
        assert serial.results == parallel.results

    def test_cached_parent_unblocks_children(self, tmp_path):
        graph = TaskGraph([
            Task(task_id="parent", payload=2, spec={"op": "parent"},
                 deterministic=True),
            Task(task_id="child", spec={"op": "child"}, deterministic=True,
                 depends_on=("parent",)),
        ])
        cache = ResultCache(str(tmp_path))
        CampaignEngine(cache=cache).run(graph, _sum_worker)

        warm = CampaignEngine(cache=cache).run(graph, _sum_worker)
        assert warm.statuses == {"parent": STATUS_CACHED,
                                 "child": STATUS_CACHED}
        assert warm.report.n_cache_hits == 2
        assert warm.results == [2, 2]

        # Same parent, different child spec: the cached parent result must
        # feed the freshly executed child.
        mixed_graph = TaskGraph([
            Task(task_id="parent", payload=2, spec={"op": "parent"},
                 deterministic=True),
            Task(task_id="child", spec={"op": "child-v2"},
                 deterministic=True, depends_on=("parent",)),
        ])
        mixed = CampaignEngine(cache=cache).run(mixed_graph, _sum_worker)
        assert mixed.statuses["parent"] == STATUS_CACHED
        assert mixed.statuses["child"] == STATUS_EXECUTED
        assert mixed.results == [2, 2]

    def test_failure_skips_descendants_and_reports(self):
        graph = TaskGraph([
            Task(task_id="ok-root"),
            Task(task_id="bad-root", payload="fail"),
            Task(task_id="child", depends_on=("bad-root",)),
            Task(task_id="grandchild", depends_on=("child",)),
            Task(task_id="ok-leaf", depends_on=("ok-root",)),
        ])
        run = CampaignEngine().run(graph, _failing_worker,
                                   on_failure="skip")
        assert run.statuses == {
            "ok-root": STATUS_EXECUTED,
            "bad-root": STATUS_FAILED,
            "child": STATUS_SKIPPED,
            "grandchild": STATUS_SKIPPED,
            "ok-leaf": STATUS_EXECUTED,
        }
        assert "injected failure" in run.errors["bad-root"]
        assert run.report.n_failed == 1
        assert run.report.n_skipped == 2
        assert run.skipped_tasks() == ["child", "grandchild"]
        assert not run.ok
        assert "1 failed" in run.report.summary()

    def test_skipped_tasks_never_execute(self):
        calls = []
        graph = TaskGraph([
            Task(task_id="bad", payload="fail"),
            Task(task_id="child", depends_on=("bad",)),
        ])
        run = CampaignEngine().run(graph, _recording_worker, context=calls,
                                   on_failure="skip")
        assert calls == ["bad"]
        assert run.statuses["child"] == STATUS_SKIPPED

    def test_on_failure_raise_carries_the_run(self):
        graph = TaskGraph([
            Task(task_id="bad", payload="fail"),
            Task(task_id="child", depends_on=("bad",)),
        ])
        with pytest.raises(TaskExecutionError) as excinfo:
            CampaignEngine().run(graph, _failing_worker)
        assert "bad" in str(excinfo.value)
        run = excinfo.value.run
        assert run.statuses["child"] == STATUS_SKIPPED

    def test_flat_graph_with_skip_keeps_partial_results(self):
        """Edge-free graphs keep the 3-arg worker contract in skip mode."""
        graph = TaskGraph([
            Task(task_id="one"),
            Task(task_id="bad", payload="fail"),
            Task(task_id="two"),
        ])
        run = CampaignEngine().run(graph, _flat_worker, on_failure="skip")
        assert run.results == [1, None, 1]
        assert run.statuses["bad"] == STATUS_FAILED
        assert "injected failure" in run.errors["bad"]

    def test_rejects_unknown_on_failure(self):
        with pytest.raises(EngineError):
            CampaignEngine().run(TaskGraph([Task(task_id="t")]),
                                 _sum_worker, on_failure="ignore")


# ------------------------------------------------------------- Pipeline API

def _double_worker(context, task, rng, inputs):
    return 2 * task.payload


def _reduce_worker(context, task, rng, inputs):
    return sorted(inputs.values())


def _raising_stage_worker(context, task, rng, inputs):
    raise RuntimeError("calibration exploded")


class TestPipeline:
    def _build(self):
        pipeline = Pipeline("test-flow")
        pipeline.add_stage("produce", _double_worker)
        pipeline.add_stage("reduce", _reduce_worker)
        for i in range(3):
            pipeline.add_task("produce", Task(task_id=f"p/{i}", payload=i))
        pipeline.add_task("reduce", Task(
            task_id="total", depends_on=("p/0", "p/1", "p/2")))
        return pipeline

    def test_duplicate_stage_rejected(self):
        pipeline = Pipeline()
        pipeline.add_stage("s", _double_worker)
        with pytest.raises(EngineError):
            pipeline.add_stage("s", _double_worker)

    def test_task_needs_declared_stage(self):
        with pytest.raises(EngineError):
            Pipeline().add_task("nope", Task(task_id="t"))

    def test_empty_pipeline_rejected(self):
        pipeline = Pipeline()
        pipeline.add_stage("s", _double_worker)
        with pytest.raises(EngineError):
            pipeline.run()

    def test_tasks_inherit_stage_as_group(self):
        pipeline = self._build()
        assert pipeline.graph.get("p/0").group == "produce"
        assert pipeline.graph.get("total").group == "reduce"

    def test_run_routes_tasks_to_stage_workers(self):
        result = self._build().run()
        assert result.ok
        assert result.result_for("total") == [0, 2, 4]
        assert result.stage_results("produce") == \
            {"p/0": 0, "p/1": 2, "p/2": 4}
        assert result.report.group_durations.keys() == {"produce", "reduce"}

    def test_multiprocess_pipeline_matches_serial(self):
        serial = self._build().run()
        parallel = self._build().run(
            backend=MultiprocessBackend(max_workers=2))
        assert serial.run.results == parallel.run.results

    def test_failed_stage_skips_downstream_stage(self):
        """A failed calibration-style stage marks campaign tasks skipped."""
        pipeline = Pipeline("failing-flow")
        pipeline.add_stage("calibrate", _raising_stage_worker)
        pipeline.add_stage("campaign", _double_worker)
        pipeline.add_task("calibrate", Task(task_id="calib/0"))
        for i in range(3):
            pipeline.add_task("campaign", Task(
                task_id=f"defect/{i}", payload=i, depends_on=("calib/0",)))
        result = pipeline.run(on_failure="skip")
        assert result.stage_statuses("calibrate") == \
            {"calib/0": STATUS_FAILED}
        assert result.stage_statuses("campaign") == \
            {f"defect/{i}": STATUS_SKIPPED for i in range(3)}
        assert result.report.n_failed == 1
        assert result.report.n_skipped == 3
        assert result.stage_results("campaign") == {}
        assert not result.ok


# ------------------------------------------------- calibrate_then_campaign

BLOCK = "vcm_generator"
MC = 3
SEED = 1


def _manual_flow():
    """The historical two-invocation flow, as `repro-campaign` runs it."""
    from repro.adc import SarAdc
    from repro.core import calibrate_windows
    from repro.defects import DefectCampaign, SamplingPlan

    calibration = calibrate_windows(
        k=5.0, n_monte_carlo=MC, rng=np.random.default_rng(SEED))
    campaign = DefectCampaign(adc=SarAdc(), deltas=calibration.deltas)
    rng = np.random.default_rng(SEED)
    block_universe = campaign.universe.by_block(BLOCK)
    plan = SamplingPlan(exhaustive=len(block_universe) <= 120, n_samples=60)
    return calibration, campaign.run(plan, blocks=[BLOCK], rng=rng)


def _record_digest(result):
    return [(r.defect.defect_id, r.detected, r.detecting_invariance,
             r.detection_cycle, r.cycles_run) for r in result.records]


class TestCalibrateThenCampaign:
    def test_rejects_bad_k_before_running_anything(self):
        from repro.circuit import CalibrationError
        with pytest.raises(CalibrationError):
            build_calibrate_then_campaign(k=-1.0, n_monte_carlo=MC)

    def test_graph_shape(self):
        plan = build_calibrate_then_campaign(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK])
        graph = plan.pipeline.graph
        assert graph.has_edges
        assert graph.dependencies("windows") == tuple(
            f"calib/{i}" for i in range(MC))
        for task_id in plan.block_task_ids[BLOCK]:
            assert graph.dependencies(task_id) == ("windows",)

    def test_bit_identical_to_manual_two_invocation_flow(self):
        calibration, manual = _manual_flow()
        outcome = calibrate_then_campaign(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK])
        assert outcome.ok
        assert outcome.calibration.deltas == calibration.deltas
        assert outcome.calibration.sigmas == calibration.sigmas
        result = outcome.results[BLOCK]
        assert _record_digest(result) == _record_digest(manual)
        assert result.block_report(BLOCK).coverage == \
            manual.block_report(BLOCK).coverage

    def test_multiprocess_matches_serial(self):
        serial = calibrate_then_campaign(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK])
        parallel = calibrate_then_campaign(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK],
            backend=MultiprocessBackend(max_workers=2))
        assert parallel.calibration.deltas == serial.calibration.deltas
        assert _record_digest(parallel.results[BLOCK]) == \
            _record_digest(serial.results[BLOCK])

    def test_warm_cache_skips_completed_parents(self, tmp_path):
        def cache():
            return ResultCache(str(tmp_path), namespace="pipeline")

        cold = calibrate_then_campaign(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK], cache=cache())
        assert cold.report.n_cache_hits == 0

        warm = calibrate_then_campaign(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK], cache=cache())
        assert warm.report.n_cache_hits == warm.report.n_tasks
        assert _record_digest(warm.results[BLOCK]) == \
            _record_digest(cold.results[BLOCK])

        # Changing the campaign spec invalidates only the campaign stage:
        # cached calibration parents short-circuit and unblock the defect
        # tasks immediately.
        mixed = calibrate_then_campaign(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK],
            stop_on_detection=False, cache=cache())
        assert all(status == STATUS_CACHED for status in
                   mixed.pipeline.stage_statuses("calibrate").values())
        assert mixed.pipeline.stage_statuses("windows") == \
            {"windows": STATUS_CACHED}
        assert all(status == STATUS_EXECUTED for status in
                   mixed.pipeline.stage_statuses("campaign").values())

    def test_single_report_spans_stages(self):
        outcome = calibrate_then_campaign(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK])
        # MC calibration tasks + 1 windows reduction + 35 defect tasks.
        assert outcome.report.n_tasks == \
            MC + 1 + outcome.results[BLOCK].n_simulated
        assert "calibrate" in outcome.report.group_durations
        assert BLOCK in outcome.report.group_durations
        assert outcome.results[BLOCK].engine_report is outcome.report


# -------------------------------------------------------------- block study

#: vcm_generator exceeds the threshold (LWRS draws exercised);
#: offset_compensation stays exhaustive -- the Table I mix.
STUDY_BLOCKS = ["vcm_generator", "offset_compensation"]
STUDY_SAMPLES = 10
STUDY_THRESHOLD = 20


def _summary_digest(summary):
    """A block summary without its (non-deterministic) wall-clock entry."""
    return {key: value for key, value in summary.items()
            if key != "wall_time"}


def _sequential_per_block_flow(seed=SEED, blocks=STUDY_BLOCKS):
    """calibrate_windows + run_per_block, as a user scripts Table I."""
    from repro.adc import SarAdc
    from repro.core import calibrate_windows
    from repro.defects import DefectCampaign

    calibration = calibrate_windows(
        k=5.0, n_monte_carlo=MC, rng=np.random.default_rng(seed))
    campaign = DefectCampaign(adc=SarAdc(), deltas=calibration.deltas)
    return calibration, campaign.run_per_block(
        n_samples_per_block=STUDY_SAMPLES, seed=seed,
        exhaustive_threshold=STUDY_THRESHOLD, blocks=blocks)


class TestBlockStudy:
    def _study(self, seed=SEED, blocks=STUDY_BLOCKS, **kwargs):
        return block_study(n_monte_carlo=MC, seed=seed, blocks=blocks,
                           samples=STUDY_SAMPLES,
                           exhaustive_threshold=STUDY_THRESHOLD, **kwargs)

    def test_graph_shape(self):
        plan = build_block_study(
            n_monte_carlo=MC, seed=SEED, blocks=STUDY_BLOCKS,
            samples=STUDY_SAMPLES, exhaustive_threshold=STUDY_THRESHOLD)
        graph = plan.pipeline.graph
        assert plan.pipeline.stage_names() == \
            ["calibrate", "windows", "campaign", "summary"]
        calib_ids = tuple(f"calib/{i}" for i in range(MC))
        for block in STUDY_BLOCKS:
            windows_id = plan.windows_task_ids[block]
            assert graph.dependencies(windows_id) == calib_ids
            # Every defect task depends only on its own block's windows, so
            # blocks never serialise behind each other.
            for task_id in plan.block_task_ids[block]:
                assert graph.dependencies(task_id) == (windows_id,)
            assert graph.dependencies(plan.summary_task_ids[block]) == \
                (windows_id,) + tuple(plan.block_task_ids[block])

    def test_rejects_bad_parameters(self):
        from repro.circuit import CalibrationError
        with pytest.raises(EngineError):
            build_block_study(n_monte_carlo=0)
        with pytest.raises(CalibrationError):
            build_block_study(n_monte_carlo=MC, k=-2.0)
        with pytest.raises(CalibrationError):
            build_block_study(n_monte_carlo=MC,
                              block_k={"vcm_generator": 0.0})

    def test_bit_identical_to_sequential_per_block_flow(self):
        """The acceptance criterion: one graph == calibrate_windows +
        run_per_block under the same root seed."""
        calibration, sequential = _sequential_per_block_flow()
        outcome = self._study()
        assert outcome.ok
        for block in STUDY_BLOCKS:
            assert outcome.calibrations[block].deltas == calibration.deltas
            assert outcome.calibrations[block].sigmas == calibration.sigmas
            assert _record_digest(outcome.results[block]) == \
                _record_digest(sequential[block])
            graph_report = outcome.results[block].block_report(block)
            seq_report = sequential[block].block_report(block)
            assert graph_report.coverage == seq_report.coverage
            # The in-graph summary reduction agrees with both.
            summary = outcome.summaries[block]
            assert summary["coverage"] == seq_report.coverage.value
            assert summary["ci_half_width"] == \
                seq_report.coverage.ci_half_width
            assert summary["n_detected"] == sequential[block].n_detected
            assert summary["n_simulated"] == sequential[block].n_simulated
            assert summary["deltas"] == calibration.deltas

    def test_block_order_invariance(self):
        forward = self._study()
        backward = self._study(blocks=list(reversed(STUDY_BLOCKS)))
        for block in STUDY_BLOCKS:
            assert _record_digest(forward.results[block]) == \
                _record_digest(backward.results[block])
            assert _summary_digest(forward.summaries[block]) == \
                _summary_digest(backward.summaries[block])

    def test_pool_backends_match_serial(self):
        serial = self._study()
        for backend in (MultiprocessBackend(max_workers=2),
                        SharedMemoryBackend(max_workers=2)):
            pooled = self._study(backend=backend)
            for block in STUDY_BLOCKS:
                assert pooled.calibrations[block].deltas == \
                    serial.calibrations[block].deltas
                assert _record_digest(pooled.results[block]) == \
                    _record_digest(serial.results[block])
                assert _summary_digest(pooled.summaries[block]) == \
                    _summary_digest(serial.summaries[block])

    def test_single_report_spans_all_stages(self):
        outcome = self._study()
        n_defect_tasks = sum(result.n_simulated
                             for result in outcome.results.values())
        n_blocks = len(STUDY_BLOCKS)
        assert outcome.report.n_tasks == MC + 2 * n_blocks + n_defect_tasks
        assert outcome.report.stage_counts == {
            "calibrate": MC, "windows": n_blocks,
            "campaign": n_defect_tasks, "summary": n_blocks}
        assert set(outcome.report.stage_durations) == \
            {"calibrate", "windows", "campaign", "summary"}
        for block in STUDY_BLOCKS:
            assert block in outcome.report.group_durations
            assert outcome.results[block].engine_report is outcome.report
        assert "campaign" in outcome.report.stage_summary()

    def test_per_block_k_override(self):
        """block_k re-calibrates one block's windows without touching the
        other blocks (per-block window calibration)."""
        uniform = self._study()
        widened = self._study(block_k={"vcm_generator": 8.0})
        assert widened.ok
        assert widened.calibrations["vcm_generator"].k == 8.0
        vcm = widened.calibrations["vcm_generator"].deltas
        base = uniform.calibrations["vcm_generator"].deltas
        # Continuous invariances widen with k; floored ones stay put.
        assert vcm["dac_sum"] > base["dac_sum"]
        assert widened.calibrations["offset_compensation"].deltas == \
            uniform.calibrations["offset_compensation"].deltas
        # Wider windows can only lose detections, never gain them.
        assert widened.results["vcm_generator"].n_detected <= \
            uniform.results["vcm_generator"].n_detected

    def test_warm_cache_replays_every_stage(self, tmp_path):
        def cache():
            return ResultCache(str(tmp_path / "cache"),
                               namespace="calibration")
        cold = self._study(cache=cache())
        assert cold.report.n_cache_hits == 0
        warm = self._study(cache=cache())
        assert warm.report.n_cache_hits == warm.report.n_tasks
        for block in STUDY_BLOCKS:
            assert _record_digest(warm.results[block]) == \
                _record_digest(cold.results[block])
            assert warm.summaries[block] == cold.summaries[block]

    def test_calibrate_artifacts_shared_with_standalone_calibrate(
            self, tmp_path):
        """The calibrate stage replays `calibrate_windows` artifacts."""
        from repro.core import calibrate_windows
        cache = ResultCache(str(tmp_path / "cache"),
                            namespace="calibration")
        calibrate_windows(k=5.0, n_monte_carlo=MC,
                          rng=np.random.default_rng(SEED), cache=cache)
        outcome = self._study(
            cache=ResultCache(str(tmp_path / "cache"),
                              namespace="calibration"))
        statuses = outcome.pipeline.stage_statuses("calibrate")
        assert all(status == STATUS_CACHED for status in statuses.values())

    def test_failed_calibration_skips_every_block(self):
        """Failing Monte Carlo roots mark every downstream windows /
        campaign / summary task of every block skipped."""
        _FACTORY_CALLS["n"] = 0
        outcome = block_study(n_monte_carlo=MC, seed=SEED,
                              blocks=["vcm_generator"],
                              adc_factory=_exploding_factory,
                              on_failure="skip")
        assert not outcome.ok
        assert outcome.results == {}
        assert outcome.calibrations == {}
        assert outcome.summaries == {}
        assert set(outcome.pipeline.stage_statuses("calibrate").values()) \
            == {STATUS_FAILED}
        assert set(outcome.pipeline.stage_statuses("windows").values()) \
            == {STATUS_SKIPPED}
        assert set(outcome.pipeline.stage_statuses("campaign").values()) \
            == {STATUS_SKIPPED}
        assert set(outcome.pipeline.stage_statuses("summary").values()) \
            == {STATUS_SKIPPED}


_FACTORY_CALLS = {"n": 0}


def _exploding_factory():
    """Builds the IP for the graph construction, then fails in the workers."""
    from repro.adc import SarAdc
    _FACTORY_CALLS["n"] += 1
    if _FACTORY_CALLS["n"] > 1:
        raise RuntimeError("no ADC for you")
    return SarAdc()


# --------------------------------------------------------- yield-loss study
K_VALUES = (3.0, 5.0)
MAX_ESCAPES = 3


def _manual_study():
    """The historical four-step flow the study graph must reproduce."""
    from repro.adc import SarAdc
    from repro.analysis import analyze_escapes, empirical_yield_loss
    from repro.core import calibrate_windows
    from repro.defects import DefectCampaign, SamplingPlan

    calibration = calibrate_windows(
        k=5.0, n_monte_carlo=MC, rng=np.random.default_rng(SEED),
        keep_pools=True)
    campaign = DefectCampaign(adc=SarAdc(), deltas=calibration.deltas)
    result = campaign.run(SamplingPlan(exhaustive=True), blocks=[BLOCK],
                          rng=np.random.default_rng(SEED))
    points = [empirical_yield_loss(calibration, k) for k in K_VALUES]
    escapes = analyze_escapes(result, max_defects=MAX_ESCAPES)
    return calibration, result, points, escapes


class TestYieldLossStudy:
    def test_graph_shape(self):
        plan = build_yield_loss_study(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK], k_values=K_VALUES,
            max_escape_defects=MAX_ESCAPES)
        graph = plan.pipeline.graph
        for i, k in enumerate(K_VALUES):
            assert graph.dependencies(f"yield/{i}/k={k:g}") == tuple(
                f"calib/{j}" for j in range(MC))
        assert graph.dependencies("escape") == tuple(
            plan.base.block_task_ids[BLOCK])
        assert plan.pipeline.stage_names() == \
            ["calibrate", "windows", "campaign", "yield", "escape"]

    def test_bit_identical_to_manual_flow(self):
        calibration, manual, points, escapes = _manual_study()
        outcome = yield_loss_study(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK], k_values=K_VALUES,
            max_escape_defects=MAX_ESCAPES)
        assert outcome.ok
        assert outcome.calibration.deltas == calibration.deltas
        assert _record_digest(outcome.results[BLOCK]) == \
            _record_digest(manual)
        assert outcome.yield_points == points
        assert outcome.escapes.n_undetected_total == \
            escapes.n_undetected_total
        assert [(r.defect.defect_id, r.spec_violations, r.gross_failure)
                for r in outcome.escapes.records] == \
            [(r.defect.defect_id, r.spec_violations, r.gross_failure)
             for r in escapes.records]

    def test_shared_memory_backend_matches_serial(self):
        serial = yield_loss_study(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK], k_values=K_VALUES,
            max_escape_defects=MAX_ESCAPES)
        shm = yield_loss_study(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK], k_values=K_VALUES,
            max_escape_defects=MAX_ESCAPES,
            backend=SharedMemoryBackend(max_workers=2))
        assert shm.yield_points == serial.yield_points
        assert shm.calibration.deltas == serial.calibration.deltas
        assert _record_digest(shm.results[BLOCK]) == \
            _record_digest(serial.results[BLOCK])
        assert [(r.defect.defect_id, r.spec_violations)
                for r in shm.escapes.records] == \
            [(r.defect.defect_id, r.spec_violations)
             for r in serial.escapes.records]
        assert shm.report.backend == "shm"

    def test_warm_cache_replays_all_stages(self, tmp_path):
        def cache():
            return ResultCache(str(tmp_path / "cache"),
                               namespace="calibration")
        cold = yield_loss_study(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK], k_values=K_VALUES,
            max_escape_defects=MAX_ESCAPES, cache=cache())
        warm = yield_loss_study(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK], k_values=K_VALUES,
            max_escape_defects=MAX_ESCAPES, cache=cache())
        assert warm.report.n_cache_hits == warm.report.n_tasks
        assert warm.yield_points == cold.yield_points
        assert [(r.defect.defect_id, r.spec_violations)
                for r in warm.escapes.records] == \
            [(r.defect.defect_id, r.spec_violations)
             for r in cold.escapes.records]

    def test_rejects_bad_parameters(self):
        with pytest.raises(EngineError):
            build_yield_loss_study(n_monte_carlo=MC, k_values=())
        with pytest.raises(EngineError):
            build_yield_loss_study(n_monte_carlo=MC, n_cycles=0)
