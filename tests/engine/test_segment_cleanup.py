"""Shared-memory segments must not outlive their owner process.

``SharedMemoryBackend`` parks the campaign context in a ``/dev/shm``
segment.  A process that exits without calling ``destroy()`` -- normal
interpreter exit, or a SIGTERM from a supervisor killing a hung run --
must still unlink the segment, or every killed campaign leaks its whole
context buffer until reboot.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.engine.backends import _LIVE_SEGMENTS, _SharedObject

SRC_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def _spawn(body):
    """Run *body* in a child interpreter that prints its segment name and
    then waits to be killed."""
    script = textwrap.dedent(body)
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(SRC_DIR) + os.pathsep + \
        env.get("PYTHONPATH", "")
    return subprocess.Popen([sys.executable, "-c", script],
                            stdout=subprocess.PIPE, text=True, env=env)


def _segment_path(name):
    return os.path.join("/dev/shm", name.lstrip("/"))


def _wait_gone(path, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if not os.path.exists(path):
            return True
        time.sleep(0.05)
    return not os.path.exists(path)


@pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                    reason="no /dev/shm on this platform")
class TestSegmentCleanup:
    def test_sigterm_unlinks_segment(self):
        proc = _spawn("""
            import os, sys, time
            from repro.engine.backends import _SharedObject
            segment = _SharedObject({"ctx": list(range(1000))})
            print(segment.name, flush=True)
            time.sleep(60)
        """)
        try:
            name = proc.stdout.readline().strip()
            assert name, "child printed no segment name"
            path = _segment_path(name)
            assert os.path.exists(path), "segment was never created"
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10.0)
            assert _wait_gone(path), \
                f"SIGTERM leaked shared-memory segment {path}"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_normal_exit_without_destroy_unlinks_segment(self):
        proc = _spawn("""
            from repro.engine.backends import _SharedObject
            segment = _SharedObject(b"x" * 4096)
            print(segment.name, flush=True)
            # exit without destroy(): atexit must reap it
        """)
        try:
            name = proc.stdout.readline().strip()
            proc.wait(timeout=10.0)
            assert _wait_gone(_segment_path(name)), \
                f"normal exit leaked shared-memory segment {name}"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_sigterm_exit_status_still_signals_termination(self):
        # Chaining must re-deliver the signal (default disposition), so
        # supervisors still see a SIGTERM death, not a clean exit.
        proc = _spawn("""
            import time
            from repro.engine.backends import _SharedObject
            segment = _SharedObject([1, 2, 3])
            print(segment.name, flush=True)
            time.sleep(60)
        """)
        try:
            proc.stdout.readline()
            proc.send_signal(signal.SIGTERM)
            proc.wait(timeout=10.0)
            assert proc.returncode == -signal.SIGTERM
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()


def test_destroy_deregisters_segment():
    segment = _SharedObject({"a": 1})
    assert segment in _LIVE_SEGMENTS
    segment.destroy()
    assert segment not in _LIVE_SEGMENTS
    segment.destroy()  # idempotent
