"""Failure injection and resource hygiene of :class:`SharedMemoryBackend`.

The shared-memory backend must be a drop-in transport: identical failure
semantics to :class:`MultiprocessBackend` (mid-stream worker exceptions,
``on_failure="skip"`` descendant skips, drained-then-raised batch failures)
and no ``/dev/shm`` segments outliving the engine, whatever path shut it
down.
"""

import os

import pytest

from repro.circuit import EngineError, TaskExecutionError
from repro.engine import (CampaignEngine, MultiprocessBackend, ResultCache,
                          SharedMemoryBackend, Task, TaskGraph)


# Module-level workers so the pool backends can pickle them.
def square_worker(context, task, rng):
    return task.payload ** 2


def failing_worker(context, task, rng):
    if task.payload == 3:
        raise ValueError("boom on task 3")
    return task.payload


def failing_graph_worker(context, task, rng, inputs):
    """Raises mid-stream: after the root completed, before the leaves run."""
    if task.task_id == "mid/1":
        raise ValueError("boom mid-stream")
    return (task.payload or 0) + sum(inputs.values())


def tasks_of(n):
    return TaskGraph([Task(task_id=f"t{i}", payload=i) for i in range(n)])


def diamond_graph():
    """root -> mid/0..2 -> leaf; mid/1 fails, so leaf must be skipped."""
    graph = TaskGraph()
    graph.add(Task(task_id="root", payload=1))
    for i in range(3):
        graph.add(Task(task_id=f"mid/{i}", payload=10 + i,
                       depends_on=("root",)))
    graph.add(Task(task_id="leaf", payload=100,
                   depends_on=("mid/0", "mid/1", "mid/2")))
    return graph


@pytest.fixture(autouse=True)
def no_leaked_segments():
    """Every test must leave /dev/shm exactly as it found it."""
    if not os.path.isdir("/dev/shm"):
        yield  # non-Linux: nothing to observe
        return
    before = set(os.listdir("/dev/shm"))
    yield
    leaked = {name for name in set(os.listdir("/dev/shm")) - before
              if name.startswith("psm_")}
    assert not leaked, f"leaked shared-memory segments: {leaked}"


class TestFailureInjection:
    def test_flat_failure_raises_and_names_task(self):
        with pytest.raises(TaskExecutionError, match="t3"):
            CampaignEngine(backend=SharedMemoryBackend(max_workers=2)).run(
                tasks_of(5), failing_worker)

    def test_skip_statuses_match_multiprocess(self):
        """A worker raising mid-stream must produce the same
        ``on_failure="skip"`` statuses, errors and skips as the
        multiprocess backend."""
        mp_run = CampaignEngine(
            backend=MultiprocessBackend(max_workers=2)).run(
            diamond_graph(), failing_graph_worker, on_failure="skip")
        shm_run = CampaignEngine(
            backend=SharedMemoryBackend(max_workers=2)).run(
            diamond_graph(), failing_graph_worker, on_failure="skip")
        serial_run = CampaignEngine().run(
            diamond_graph(), failing_graph_worker, on_failure="skip")
        assert shm_run.statuses == mp_run.statuses == serial_run.statuses
        assert shm_run.statuses["mid/1"] == "failed"
        assert shm_run.statuses["leaf"] == "skipped"
        assert shm_run.results == mp_run.results == serial_run.results
        assert shm_run.errors.keys() == mp_run.errors.keys() == {"mid/1"}
        assert shm_run.skipped_tasks() == mp_run.skipped_tasks() == ["leaf"]
        assert _counts(shm_run.report) == _counts(mp_run.report)

    def test_flat_skip_statuses_match_multiprocess(self):
        mp_run = CampaignEngine(
            backend=MultiprocessBackend(max_workers=2)).run(
            tasks_of(5), failing_worker, on_failure="skip")
        shm_run = CampaignEngine(
            backend=SharedMemoryBackend(max_workers=2)).run(
            tasks_of(5), failing_worker, on_failure="skip")
        assert shm_run.statuses == mp_run.statuses
        assert shm_run.results == mp_run.results == [0, 1, 2, None, 4]

    def test_completed_chunks_drain_to_cache_on_failure(self, tmp_path):
        """Batch-mode parity: chunk-mates completed before the failure must
        still reach the cache before the error propagates."""
        cache = ResultCache(str(tmp_path), namespace="test")
        graph = TaskGraph([Task(task_id=f"t{i}", payload=i,
                                spec={"op": "fail-at-3", "i": i},
                                deterministic=True)
                           for i in range(6)])
        backend = SharedMemoryBackend(max_workers=1, chunk_size=2)
        with pytest.raises(TaskExecutionError, match="t3"):
            CampaignEngine(cache=cache, backend=backend).run(
                graph, failing_worker)
        assert 3 <= len(cache) <= 5  # same bounds as MultiprocessBackend


def _counts(report):
    return (report.n_tasks, report.n_executed, report.n_cache_hits,
            report.n_failed, report.n_skipped)


class TestSegmentLifecycle:
    def test_batch_run_unlinks_segment(self):
        run = CampaignEngine(backend=SharedMemoryBackend(max_workers=2)).run(
            tasks_of(4), square_worker)
        assert run.results == [0, 1, 4, 9]
        # the autouse fixture asserts /dev/shm is clean afterwards

    def test_failed_batch_run_unlinks_segment(self):
        with pytest.raises(TaskExecutionError):
            CampaignEngine(backend=SharedMemoryBackend(max_workers=2)).run(
                tasks_of(5), failing_worker)

    @pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                        reason="needs a POSIX shared-memory mount")
    def test_stream_owns_one_segment_until_closed(self):
        before = set(os.listdir("/dev/shm"))
        backend = SharedMemoryBackend(max_workers=1)
        stream = backend.stream(_echo_item)
        created = {name for name in set(os.listdir("/dev/shm")) - before
                   if name.startswith("psm_")}
        assert len(created) == 1
        stream.close()
        assert not (created & set(os.listdir("/dev/shm")))

    def test_stream_close_with_pending_items_unlinks(self):
        backend = SharedMemoryBackend(max_workers=1)
        with backend.stream(_echo_item) as stream:
            for i in range(3):
                stream.submit((i,))
            # close() without draining: futures cancelled, segment unlinked

    def test_stream_close_is_idempotent(self):
        backend = SharedMemoryBackend(max_workers=1)
        stream = backend.stream(_echo_item)
        stream.submit((0,))
        assert stream.next_outcome()[1] is True
        stream.close()
        stream.close()

    def test_consumer_interrupt_mid_iteration_unlinks(self):
        """A KeyboardInterrupt delivered while the consumer drains the
        stream (the realistic Ctrl-C during a long campaign) must not leak
        the /dev/shm segment."""
        backend = SharedMemoryBackend(max_workers=1)
        with pytest.raises(KeyboardInterrupt):
            with backend.stream(_echo_item) as stream:
                stream.submit((0,))
                assert stream.next_outcome()[1] is True
                stream.submit((1,))
                raise KeyboardInterrupt  # consumer-side, mid-iteration
        # the autouse fixture asserts /dev/shm is clean afterwards

    def test_interrupt_during_close_still_unlinks(self, monkeypatch):
        """A second Ctrl-C landing inside the graceful close() (while it
        waits for in-flight work) must still unlink the segment and
        propagate -- close must not hang or leak."""
        from repro.engine import backends as backends_module

        shutdowns = []
        real_stream = backends_module._PoolWorkStream

        class _InterruptedPool:
            def __init__(self, pool):
                self._pool = pool

            def submit(self, *args, **kwargs):
                return self._pool.submit(*args, **kwargs)

            def shutdown(self, wait=True, **kwargs):
                shutdowns.append((wait, kwargs))
                if wait:
                    raise KeyboardInterrupt  # impatient second Ctrl-C
                return self._pool.shutdown(wait=wait, **kwargs)

        def wrapping_stream(*args, **kwargs):
            stream = real_stream(*args, **kwargs)
            stream._pool = _InterruptedPool(stream._pool)
            return stream

        monkeypatch.setattr(backends_module, "_PoolWorkStream",
                            wrapping_stream)
        backend = SharedMemoryBackend(max_workers=1)
        stream = backend.stream(_echo_item)
        stream.submit((0,))
        assert stream.next_outcome()[1] is True
        with pytest.raises(KeyboardInterrupt):
            stream.close()
        # The interrupt path fell back to a non-blocking shutdown ...
        assert [wait for wait, _ in shutdowns] == [True, False]
        assert shutdowns[1][1].get("cancel_futures") is True
        # ... and the autouse fixture asserts the segment was unlinked.

    def test_pool_construction_failure_unlinks_segment(self, monkeypatch):
        """If the worker pool cannot even be built, nobody will call
        close(); the segment must still be unlinked."""
        import concurrent.futures

        def broken_pool(*args, **kwargs):
            raise OSError("no processes for you")

        monkeypatch.setattr(concurrent.futures, "ProcessPoolExecutor",
                            broken_pool)
        backend = SharedMemoryBackend(max_workers=1)
        with pytest.raises(OSError):
            backend.stream(_echo_item)
        # the autouse fixture asserts /dev/shm is clean afterwards


def _echo_item(item):
    return item


class TestPayloadReport:
    def test_shared_context_shrinks_per_task_payload(self):
        big_context = {"blob": list(range(20000))}
        mp_backend = MultiprocessBackend(max_workers=2, measure_payload=True)
        shm_backend = SharedMemoryBackend(max_workers=2,
                                          measure_payload=True)
        CampaignEngine(backend=mp_backend).run(
            tasks_of(8), _context_len_worker, context=big_context)
        CampaignEngine(backend=shm_backend).run(
            tasks_of(8), _context_len_worker, context=big_context)
        mp_payload, shm_payload = mp_backend.last_payload, \
            shm_backend.last_payload
        assert mp_payload.n_items == shm_payload.n_items == 8
        assert mp_payload.context_bytes == 0
        assert shm_payload.context_bytes > 0  # the one-time shared segment
        # The whole point of the backend: per-task payloads no longer carry
        # the campaign context.
        assert shm_payload.per_task_bytes < 0.1 * mp_payload.per_task_bytes

    def test_stream_mode_counts_initializer_context(self):
        """Stream mode ships the function through the pool initializer: the
        multiprocess backend pickles it once per worker, the shm backend
        once per pool -- both must show up as context_bytes so the
        comparison is honest on dependency graphs too."""
        graph = TaskGraph(
            [Task(task_id="root", payload=1)]
            + [Task(task_id=f"c{i}", payload=i, depends_on=("root",))
               for i in range(3)])
        big_context = {"blob": list(range(20000))}
        mp_backend = MultiprocessBackend(max_workers=2, measure_payload=True)
        shm_backend = SharedMemoryBackend(max_workers=2,
                                          measure_payload=True)
        mp_run = CampaignEngine(backend=mp_backend).run(
            graph, _graph_context_worker, context=big_context)
        shm_run = CampaignEngine(backend=shm_backend).run(
            graph, _graph_context_worker, context=big_context)
        assert mp_run.results == shm_run.results
        # per worker for multiprocess, per pool for shm
        assert mp_backend.last_payload.context_bytes > \
            shm_backend.last_payload.context_bytes > 0
        assert shm_backend.last_payload.per_task_bytes < \
            mp_backend.last_payload.context_bytes

    def test_measurement_off_by_default(self):
        backend = SharedMemoryBackend(max_workers=2)
        CampaignEngine(backend=backend).run(tasks_of(4), square_worker)
        assert backend.last_payload is None


def _context_len_worker(context, task, rng):
    return task.payload + len(context["blob"])


def _graph_context_worker(context, task, rng, inputs):
    return task.payload + len(context["blob"]) + sum(inputs.values())


class TestConfiguration:
    def test_name_and_workers(self):
        backend = SharedMemoryBackend(max_workers=3)
        assert backend.name == "shm"
        assert backend.workers == 3

    def test_invalid_configuration_rejected(self):
        with pytest.raises(EngineError):
            SharedMemoryBackend(max_workers=0)
        with pytest.raises(EngineError):
            SharedMemoryBackend(chunk_size=-1)

    def test_empty_graph(self):
        run = CampaignEngine(backend=SharedMemoryBackend(max_workers=2)).run(
            TaskGraph(), square_worker)
        assert run.results == []
