"""Tests for the declarative study layer (StudySpec + stage registry)."""

import json

import numpy as np
import pytest

from repro.circuit import CalibrationError, EngineError
from repro.engine import (BLOCK_STUDY, CALIBRATE_THEN_CAMPAIGN,
                          CANNED_STUDIES, MultiprocessBackend,
                          SharedMemoryBackend, StageParam, StageSpec,
                          StudySpec, YIELD_LOSS_STUDY, available_stages,
                          build_study, load_study, run_study,
                          stage_definition, yield_loss_study)
from repro.engine.registry import coerce_param

MC = 3
SEED = 1
BLOCK = "vcm_generator"
STUDY_BLOCKS = ["vcm_generator", "offset_compensation"]


# -------------------------------------------------------------- round trips

#: A spec exercising every parameter kind (floats, bools, lists, maps).
RICH_SPEC = StudySpec(
    name="rich",
    seed=7,
    params={"k": 4.5},
    stages=(
        StageSpec(stage="calibrate", params={"n_monte_carlo": 5}),
        StageSpec(stage="windows", after=("calibrate",),
                  params={"per_block": True,
                          "delta_floors": {"sign": 0.25},
                          "block_k": {"vcm_generator": 6.0}}),
        StageSpec(stage="campaign", after=("windows",),
                  params={"samples": 8, "blocks": ["vcm_generator"],
                          "stop_on_detection": False}),
        StageSpec(stage="block-summary", name="summary",
                  after=("windows", "campaign")),
    )).validated()


class TestRoundTrip:
    @pytest.mark.parametrize("spec", [CALIBRATE_THEN_CAMPAIGN, BLOCK_STUDY,
                                      YIELD_LOSS_STUDY, RICH_SPEC],
                             ids=lambda spec: spec.name)
    def test_toml_json_toml_identity(self, spec):
        """TOML -> StudySpec -> JSON -> StudySpec -> TOML is the identity."""
        from_toml = StudySpec.from_toml(spec.to_toml())
        assert from_toml == spec
        from_json = StudySpec.from_json(from_toml.to_json())
        assert from_json == spec
        assert from_json.to_toml() == spec.to_toml()

    def test_defaults_are_normalised_away(self):
        """Spelling a parameter at its registry default == omitting it."""
        explicit = StudySpec.from_toml(
            'name = "x"\nseed = 1\n'
            '[[stages]]\nstage = "calibrate"\n'
            '[stages.params]\nn_monte_carlo = 50\n')
        minimal = StudySpec.from_toml(
            'name = "x"\n[[stages]]\nstage = "calibrate"\n')
        assert explicit == minimal

    def test_stage_pin_at_default_survives_a_study_wide_override(self):
        """An explicit per-stage value equal to the registry default still
        overrides a study-wide value for the same key."""
        spec = StudySpec.from_toml(
            'name = "x"\n[params]\nk = 6.0\n'
            '[[stages]]\nstage = "calibrate"\n'
            '[[stages]]\nstage = "windows"\n[stages.params]\nk = 5.0\n'
            '[[stages]]\nstage = "campaign"\n'
            '[[stages]]\nstage = "yield"\n')
        windows = stage_definition("windows").resolve_params(
            spec.params, spec.stages[1].params, "here")
        assert windows["k"] == 5.0  # the deliberate pin wins
        yield_params = stage_definition("yield").resolve_params(
            spec.params, spec.stages[3].params, "here")
        assert yield_params["k"] == 6.0  # unpinned stages take the study k
        assert build_study(spec).k == 5.0
        # ...and the pin survives a round trip.
        assert StudySpec.from_toml(spec.to_toml()) == spec

    def test_toml_refuses_meaningful_explicit_nulls(self):
        """max_escape_defects = null (analyse everything) cannot ride
        through TOML; emitting must fail loudly, not revert to 20."""
        spec = YIELD_LOSS_STUDY.override(
            {"escape.max_escape_defects": None})
        with pytest.raises(EngineError, match="to_json"):
            spec.to_toml()
        # The JSON form carries it faithfully.
        back = StudySpec.from_json(spec.to_json())
        assert back == spec
        assert back.stages[-1].params["max_escape_defects"] is None

    def test_toml_int_equals_json_float(self):
        """`k = 5` (TOML int) and `"k": 5.0` (JSON) coerce identically."""
        toml_spec = StudySpec.from_toml(
            'name = "x"\n[[stages]]\nstage = "calibrate"\n'
            '[[stages]]\nstage = "windows"\n[stages.params]\nk = 6\n')
        json_spec = StudySpec.from_json(json.dumps({
            "name": "x",
            "stages": [{"stage": "calibrate"},
                       {"stage": "windows", "params": {"k": 6.0}}]}))
        assert toml_spec == json_spec
        k = toml_spec.stages[1].params["k"]
        assert isinstance(k, float) and k == 6.0

    def test_load_study_from_files_and_canned_names(self, tmp_path):
        toml_path = tmp_path / "study.toml"
        toml_path.write_text(BLOCK_STUDY.to_toml())
        json_path = tmp_path / "study.json"
        json_path.write_text(BLOCK_STUDY.to_json())
        assert load_study(str(toml_path)) == BLOCK_STUDY
        assert load_study(str(json_path)) == BLOCK_STUDY
        for name, spec in CANNED_STUDIES.items():
            assert load_study(name) == spec

    def test_load_study_missing_file_names_the_canned_studies(self):
        with pytest.raises(EngineError, match="block-study"):
            load_study("no/such/study.toml")

    def test_example_specs_parse_to_exactly_the_canned_specs(self):
        """The shipped examples/studies/*.toml documents (which spell the
        registry defaults out for readability) normalise to the canned
        specs, so they can never drift from what the subcommands run.
        Examples without a canned counterpart (the variant sweep) must
        still load and round-trip cleanly."""
        import os
        studies_dir = os.path.join(os.path.dirname(__file__), "..", "..",
                                   "examples", "studies")
        expected = {"calibrate_then_campaign.toml": "calibrate-then-campaign",
                    "block_study.toml": "block-study",
                    "yield_loss_study.toml": "yield-loss-study"}
        listing = sorted(os.listdir(studies_dir))
        assert sorted(expected) == [name for name in listing
                                    if name in expected]
        for filename, name in expected.items():
            path = os.path.join(studies_dir, filename)
            assert load_study(path) == CANNED_STUDIES[name], filename
        for filename in listing:
            if filename in expected:
                continue
            spec = load_study(os.path.join(studies_dir, filename))
            assert StudySpec.from_toml(spec.to_toml()) == spec, filename


# -------------------------------------------------------------- validation

def _single_stage(stage, **params):
    return StudySpec(name="x", stages=(StageSpec(stage=stage,
                                                 params=params),))


class TestValidation:
    def test_unknown_stage_lists_registered_stages(self):
        with pytest.raises(EngineError) as excinfo:
            _single_stage("calibrat").validated()
        message = str(excinfo.value)
        assert "calibrat" in message
        for name in ("calibrate", "windows", "campaign", "yield", "escape",
                     "block-summary"):
            assert name in message

    def test_unknown_parameter_lists_stage_parameters(self):
        with pytest.raises(EngineError) as excinfo:
            _single_stage("calibrate", monte_carlo=50).validated()
        message = str(excinfo.value)
        assert "monte_carlo" in message
        assert "n_monte_carlo" in message

    def test_wrong_parameter_type_is_actionable(self):
        with pytest.raises(EngineError, match="expects an integer"):
            _single_stage("calibrate", n_monte_carlo="lots").validated()
        with pytest.raises(EngineError, match="expects a number"):
            _single_stage("windows", k="wide").validated()

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(EngineError, match="stgaes"):
            StudySpec.from_toml('name = "x"\n[[stgaes]]\nstage = "c"\n')

    def test_duplicate_stage_names_rejected(self):
        spec = StudySpec(name="x", stages=(
            StageSpec(stage="calibrate"),
            StageSpec(stage="windows", name="calibrate")))
        with pytest.raises(EngineError, match="two stages named"):
            spec.validated()

    def test_after_must_reference_an_earlier_stage(self):
        spec = StudySpec(name="x", stages=(
            StageSpec(stage="calibrate", after=("windows",)),
            StageSpec(stage="windows")))
        with pytest.raises(EngineError, match="not an earlier stage"):
            spec.validated()

    def test_unknown_study_level_parameter_rejected(self):
        spec = StudySpec(name="x", params={"kay": 5.0},
                         stages=(StageSpec(stage="calibrate"),))
        with pytest.raises(EngineError, match="kay"):
            spec.validated()

    def test_missing_upstream_stage_is_actionable(self):
        # A campaign with no windows stage cannot compile.
        spec = StudySpec(name="x", stages=(
            StageSpec(stage="calibrate"),
            StageSpec(stage="campaign")))
        with pytest.raises(EngineError, match="'windows' stage"):
            build_study(spec)

    def test_block_summary_needs_per_block_windows(self):
        spec = StudySpec(name="x", stages=(
            StageSpec(stage="calibrate"),
            StageSpec(stage="windows"),
            StageSpec(stage="campaign"),
            StageSpec(stage="block-summary")))
        with pytest.raises(EngineError, match="per_block"):
            build_study(spec)

    def test_duplicate_stage_kind_rejected_at_compile(self):
        spec = StudySpec(name="x", stages=(
            StageSpec(stage="calibrate"),
            StageSpec(stage="calibrate", name="calibrate2")))
        with pytest.raises(EngineError, match="twice"):
            build_study(spec)

    def test_bad_k_rejected_before_any_work(self):
        spec = CALIBRATE_THEN_CAMPAIGN.override({"windows.k": -1.0})
        with pytest.raises(CalibrationError):
            build_study(spec)

    def test_override_unknown_stage_is_actionable(self):
        with pytest.raises(EngineError, match="known stages"):
            BLOCK_STUDY.override({"windws.k": 6.0})

    def test_override_nullable_and_removal_semantics(self):
        spec = YIELD_LOSS_STUDY.override({
            "campaign.blocks": ["sc_array"],
            "escape.max_escape_defects": None})
        campaign = next(s for s in spec.stages if s.stage == "campaign")
        escape = next(s for s in spec.stages if s.stage == "escape")
        assert campaign.params["blocks"] == ("sc_array",)
        # Explicit null on a nullable parameter is preserved (analyse all).
        assert escape.params["max_escape_defects"] is None
        # Overriding a non-nullable parameter with None restores the default.
        restored = spec.override({"campaign.blocks": None,
                                  "escape.max_escape_defects": 20})
        campaign = next(s for s in restored.stages if s.stage == "campaign")
        escape = next(s for s in restored.stages if s.stage == "escape")
        assert "blocks" not in campaign.params
        assert "max_escape_defects" not in escape.params


class TestRegistry:
    def test_stage_definitions_expose_typed_schemas(self):
        names = [definition.name for definition in available_stages()]
        assert names == ["calibrate", "windows", "campaign", "yield",
                         "escape", "block-summary"]
        campaign = stage_definition("campaign")
        assert campaign.param("samples").kind == "int"
        assert campaign.param("blocks").nullable

    def test_unknown_stage_definition_is_actionable(self):
        with pytest.raises(EngineError, match="registered stages"):
            stage_definition("nope")

    def test_coerce_param_kinds(self):
        str_list = StageParam("blocks", "str_list")
        assert coerce_param(str_list, "a,b", "here") == ("a", "b")
        float_list = StageParam("k_values", "float_list")
        assert coerce_param(float_list, [2, 3.5], "here") == (2.0, 3.5)
        assert coerce_param(float_list, "2,3.5", "here") == (2.0, 3.5)
        float_map = StageParam("block_k", "float_map")
        assert coerce_param(float_map, {"a": 2}, "here") == {"a": 2.0}
        assert coerce_param(StageParam("s", "str"), "x", "here") == "x"
        with pytest.raises(EngineError, match="boolean"):
            coerce_param(StageParam("flag", "bool"), 1, "here")
        with pytest.raises(EngineError, match="a string"):
            coerce_param(StageParam("s", "str"), 3, "here")
        with pytest.raises(EngineError, match="list of numbers"):
            coerce_param(float_list, "2,wide", "here")
        with pytest.raises(EngineError, match="list of strings"):
            coerce_param(str_list, [1, 2], "here")
        with pytest.raises(EngineError, match="name -> number"):
            coerce_param(float_map, {"a": "x"}, "here")
        with pytest.raises(EngineError, match="non-null"):
            coerce_param(StageParam("n", "int"), None, "here")
        with pytest.raises(EngineError, match="unknown kind"):
            StageParam("x", "complex")


# ----------------------------------------------------------- bit identity

def _record_digest(result):
    return [(r.defect.defect_id, r.detected, r.detecting_invariance,
             r.detection_cycle, r.cycles_run) for r in result.records]


class TestCannedSpecBitIdentity:
    """Each canned spec, compiled through build_study, reproduces the
    independent manual flow bit for bit -- on every backend."""

    def test_calibrate_then_campaign_vs_manual_flow(self):
        from repro.adc import SarAdc
        from repro.core import calibrate_windows
        from repro.defects import DefectCampaign, SamplingPlan

        calibration = calibrate_windows(
            k=5.0, n_monte_carlo=MC, rng=np.random.default_rng(SEED))
        campaign = DefectCampaign(adc=SarAdc(), deltas=calibration.deltas)
        plan = SamplingPlan(
            exhaustive=len(campaign.universe.by_block(BLOCK)) <= 120,
            n_samples=60)
        manual = campaign.run(plan, blocks=[BLOCK],
                              rng=np.random.default_rng(SEED))

        spec = CALIBRATE_THEN_CAMPAIGN.override({
            "seed": SEED, "calibrate.n_monte_carlo": MC,
            "campaign.blocks": [BLOCK]})
        outcome = run_study(spec)
        assert outcome.ok
        assert outcome.calibration.deltas == calibration.deltas
        assert _record_digest(outcome.results[BLOCK]) == \
            _record_digest(manual)

    @pytest.mark.parametrize("backend", [
        None,
        MultiprocessBackend(max_workers=2),
        SharedMemoryBackend(max_workers=2),
    ], ids=["serial", "multiprocess", "shm"])
    def test_block_study_vs_manual_flow_on_every_backend(self, backend):
        from repro.adc import SarAdc
        from repro.core import calibrate_windows
        from repro.defects import DefectCampaign

        calibration = calibrate_windows(
            k=5.0, n_monte_carlo=MC, rng=np.random.default_rng(SEED))
        campaign = DefectCampaign(adc=SarAdc(), deltas=calibration.deltas)
        manual = campaign.run_per_block(
            n_samples_per_block=10, seed=SEED, exhaustive_threshold=20,
            blocks=STUDY_BLOCKS)

        spec = BLOCK_STUDY.override({
            "seed": SEED, "calibrate.n_monte_carlo": MC,
            "campaign.blocks": STUDY_BLOCKS, "campaign.samples": 10,
            "campaign.exhaustive_threshold": 20})
        outcome = run_study(spec, backend=backend)
        assert outcome.ok
        for block in STUDY_BLOCKS:
            assert outcome.calibrations[block].deltas == calibration.deltas
            assert _record_digest(outcome.results[block]) == \
                _record_digest(manual[block])
            assert outcome.summaries[block]["n_detected"] == \
                manual[block].n_detected

    def test_yield_loss_spec_matches_legacy_builder(self):
        spec = YIELD_LOSS_STUDY.override({
            "seed": SEED, "calibrate.n_monte_carlo": MC,
            "campaign.blocks": [BLOCK], "yield.k_values": (3.0, 5.0),
            "escape.max_escape_defects": 3})
        from_spec = run_study(spec)
        legacy = yield_loss_study(
            n_monte_carlo=MC, seed=SEED, blocks=[BLOCK],
            k_values=(3.0, 5.0), max_escape_defects=3)
        assert from_spec.yield_points == legacy.yield_points
        assert _record_digest(from_spec.results[BLOCK]) == \
            _record_digest(legacy.results[BLOCK])
        assert [(r.defect.defect_id, r.spec_violations)
                for r in from_spec.escapes.records] == \
            [(r.defect.defect_id, r.spec_violations)
             for r in legacy.escapes.records]

    def test_spec_compiled_graph_replays_legacy_cache_artifacts(
            self, tmp_path):
        """A warm cache written by the legacy builder wrapper is replayed
        in full by the spec-compiled graph (identical cache specs)."""
        from repro.engine import ResultCache, block_study

        def cache():
            return ResultCache(str(tmp_path / "cache"),
                               namespace="calibration")

        cold = block_study(n_monte_carlo=MC, seed=SEED, blocks=[BLOCK],
                           samples=10, exhaustive_threshold=20,
                           cache=cache())
        assert cold.report.n_cache_hits == 0
        spec = BLOCK_STUDY.override({
            "seed": SEED, "calibrate.n_monte_carlo": MC,
            "campaign.blocks": [BLOCK], "campaign.samples": 10,
            "campaign.exhaustive_threshold": 20})
        warm = run_study(spec, cache=cache())
        assert warm.report.n_cache_hits == warm.report.n_tasks
        assert _record_digest(warm.results[BLOCK]) == \
            _record_digest(cold.results[BLOCK])


class TestStudyOutcomeAccessors:
    def test_named_stage_accessors(self):
        spec = CALIBRATE_THEN_CAMPAIGN.override({
            "seed": SEED, "calibrate.n_monte_carlo": MC,
            "campaign.blocks": [BLOCK]})
        outcome = run_study(spec)
        assert set(outcome.stage_results("calibrate")) == \
            {f"calib/{i}" for i in range(MC)}
        assert outcome.stage_statuses("windows") == {"windows": "executed"}
        # Stages the study does not declare stay at their empty defaults.
        assert outcome.yield_points == []
        assert outcome.escapes is None
        assert outcome.summaries == {}

    def test_plan_exposes_legacy_metadata(self):
        plan = build_study(BLOCK_STUDY.override({
            "calibrate.n_monte_carlo": MC, "campaign.blocks": [BLOCK],
            "campaign.samples": 10, "campaign.exhaustive_threshold": 20}))
        assert plan.base is plan
        assert plan.windows_task_ids == {BLOCK: f"windows/{BLOCK}"}
        assert plan.summary_task_ids == {BLOCK: f"summary/{BLOCK}"}
        assert plan.pipeline.stage_names() == \
            ["calibrate", "windows", "campaign", "summary"]
