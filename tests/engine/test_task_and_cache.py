"""Tests for the engine task abstraction and the result cache."""

import json
import os

import pytest

from repro.circuit import EngineError
from repro.engine import (MISS, ResultCache, Task, TaskGraph, callable_token,
                          canonical_json)


class TestTask:
    def test_requires_task_id(self):
        with pytest.raises(EngineError):
            Task(task_id="")

    def test_defaults(self):
        task = Task(task_id="t")
        assert task.payload is None
        assert task.spec is None
        assert not task.deterministic
        assert task.group is None


class TestTaskGraph:
    def test_preserves_order(self):
        graph = TaskGraph([Task(task_id=f"t{i}") for i in range(5)])
        assert graph.ids() == [f"t{i}" for i in range(5)]
        assert len(graph) == 5
        assert graph[2].task_id == "t2"

    def test_rejects_duplicate_ids(self):
        graph = TaskGraph([Task(task_id="t")])
        with pytest.raises(EngineError):
            graph.add(Task(task_id="t"))

    def test_lookup(self):
        graph = TaskGraph([Task(task_id="a"), Task(task_id="b")])
        assert graph.index_of("b") == 1
        assert graph.get("a").task_id == "a"
        with pytest.raises(EngineError):
            graph.index_of("missing")

    def test_groups_in_first_appearance_order(self):
        graph = TaskGraph([Task(task_id="1", group="x"),
                           Task(task_id="2", group="y"),
                           Task(task_id="3", group="x")])
        assert graph.groups() == ["x", "y"]


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_rejects_unserialisable(self):
        with pytest.raises(EngineError):
            canonical_json({"fn": lambda: None})


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path), namespace="test")
        key = cache.key_for({"x": 1})
        assert cache.get(key) is MISS
        cache.put(key, {"value": 42}, task_id="t")
        assert cache.get(key) == {"value": 42}
        assert cache.stats() == {"hits": 1, "misses": 1, "artifacts": 1,
                                 "evictions": 0}

    def test_cached_none_is_not_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for({"x": 1})
        cache.put(key, None)
        assert cache.get(key) is None

    def test_spec_change_invalidates(self, tmp_path):
        cache = ResultCache(str(tmp_path), namespace="test")
        key_a = cache.key_for({"deltas": {"dac_sum": 0.05}})
        key_b = cache.key_for({"deltas": {"dac_sum": 0.06}})
        assert key_a != key_b
        cache.put(key_a, "a")
        assert cache.get(key_b) is MISS

    def test_seed_material_partitions_keys(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.key_for({"x": 1}, "int:1") != cache.key_for({"x": 1}, "int:2")

    def test_namespace_and_version_partition_keys(self, tmp_path):
        spec = {"x": 1}
        key_ns1 = ResultCache(str(tmp_path), namespace="a").key_for(spec)
        key_ns2 = ResultCache(str(tmp_path), namespace="b").key_for(spec)
        key_v2 = ResultCache(str(tmp_path), namespace="a",
                             version="0.0.0-test").key_for(spec)
        assert len({key_ns1, key_ns2, key_v2}) == 3

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for({"x": 1})
        cache.put(key, "fine")
        path = os.path.join(str(tmp_path), f"{key}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        assert cache.get(key) is MISS

    def test_non_dict_artifact_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for({"x": 1})
        path = os.path.join(str(tmp_path), f"{key}.json")
        for body in ("null", "[1, 2]", '"text"'):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(body)
            assert cache.get(key) is MISS

    def test_clear_and_keys(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for i in range(3):
            cache.put(cache.key_for({"i": i}), i)
        assert len(cache.keys()) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_unserialisable_result_raises(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(EngineError):
            cache.put(cache.key_for({"x": 1}), object())

    def test_artifact_is_json_on_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path), namespace="test")
        key = cache.key_for({"x": 1})
        cache.put(key, [1, 2, 3], task_id="t", spec={"x": 1})
        with open(os.path.join(str(tmp_path), f"{key}.json"),
                  encoding="utf-8") as handle:
            entry = json.load(handle)
        assert entry["key"] == key
        assert entry["task_id"] == "t"
        assert entry["spec"] == {"x": 1}
        assert entry["result"] == [1, 2, 3]

    def test_requires_cache_dir(self):
        with pytest.raises(EngineError):
            ResultCache("")


class TestCallableToken:
    def test_function_and_class(self):
        assert callable_token(canonical_json) == \
            "repro.engine.cache.canonical_json"
        assert callable_token(ResultCache) == "repro.engine.cache.ResultCache"

    def test_unnameable_callables_get_none(self):
        class Factory:
            def __call__(self):
                return None

        assert callable_token(Factory()) is None


class TestNonFiniteRejection:
    """NaN/Infinity are not JSON; keys and artifacts must reject them."""

    def test_canonical_json_rejects_nan_and_infinity(self):
        for value in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(EngineError):
                canonical_json({"x": value})

    def test_key_for_rejects_non_finite_spec(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(EngineError):
            cache.key_for({"k": float("inf")})

    def test_put_rejects_non_finite_result(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for({"x": 1})
        with pytest.raises(EngineError):
            cache.put(key, {"value": float("nan")})
        assert cache.get(key) is MISS
        assert not [name for name in os.listdir(str(tmp_path))
                    if name.endswith(".tmp")]

    def test_sidecar_put_rejects_non_finite_array(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for({"x": 1})
        pool = [1.0] * 31 + [float("inf")]
        with pytest.raises(EngineError):
            cache.put(key, {"pool": pool}, sidecar=True)
        assert cache.get(key) is MISS


class TestSidecarArtifacts:
    def test_round_trip_is_bit_identical_to_pure_json(self, tmp_path):
        import numpy as np
        rng = np.random.default_rng(7)
        result = {"pools": {"inv_a": rng.standard_normal(64).tolist(),
                            "inv_b": rng.standard_normal(64).tolist()},
                  "meta": {"short": [1.0, 2.0], "n": 64}}
        plain = ResultCache(str(tmp_path / "plain"))
        sidecar = ResultCache(str(tmp_path / "sidecar"))
        key = plain.key_for({"x": 1})
        plain.put(key, result)
        sidecar.put(key, result, sidecar=True)
        got_plain = plain.get(key)
        got_sidecar = sidecar.get(key)
        assert got_plain == result
        assert got_sidecar == result
        assert json.dumps(got_sidecar, sort_keys=True) == \
            json.dumps(got_plain, sort_keys=True)
        npy = [name for name in os.listdir(str(tmp_path / "sidecar"))
               if name.endswith(".npy")]
        assert sorted(npy) == [f"{key}.0.npy", f"{key}.1.npy"]

    def test_short_and_mixed_lists_stay_inline(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for({"x": 1})
        cache.put(key, {"short": [1.0] * 8, "mixed": [1.0] * 30 + [1]},
                  sidecar=True)
        assert not [name for name in os.listdir(str(tmp_path))
                    if name.endswith(".npy")]
        assert cache.get(key) == {"short": [1.0] * 8,
                                  "mixed": [1.0] * 30 + [1]}

    def test_missing_sidecar_is_a_miss_and_drops_the_entry(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for({"x": 1})
        cache.put(key, {"pool": [float(i) for i in range(32)]}, sidecar=True)
        os.unlink(os.path.join(str(tmp_path), f"{key}.0.npy"))
        assert cache.get(key) is MISS
        assert not os.path.exists(os.path.join(str(tmp_path),
                                               f"{key}.json"))

    def test_sidecars_count_toward_total_bytes(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for({"x": 1})
        cache.put(key, {"pool": [float(i) for i in range(256)]},
                  sidecar=True)
        json_bytes = os.stat(os.path.join(str(tmp_path),
                                          f"{key}.json")).st_size
        npy_bytes = os.stat(os.path.join(str(tmp_path),
                                         f"{key}.0.npy")).st_size
        assert cache.total_bytes() == json_bytes + npy_bytes

    def test_clear_removes_sidecars(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(cache.key_for({"x": 1}),
                  {"pool": [float(i) for i in range(32)]}, sidecar=True)
        assert cache.clear() == 1
        assert os.listdir(str(tmp_path)) == []

    def test_reserved_marker_key_is_rejected(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(EngineError):
            cache.put(cache.key_for({"x": 1}), {"__npy__": 0}, sidecar=True)
