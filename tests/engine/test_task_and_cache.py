"""Tests for the engine task abstraction and the result cache."""

import json
import os

import pytest

from repro.circuit import EngineError
from repro.engine import (MISS, ResultCache, Task, TaskGraph, callable_token,
                          canonical_json)


class TestTask:
    def test_requires_task_id(self):
        with pytest.raises(EngineError):
            Task(task_id="")

    def test_defaults(self):
        task = Task(task_id="t")
        assert task.payload is None
        assert task.spec is None
        assert not task.deterministic
        assert task.group is None


class TestTaskGraph:
    def test_preserves_order(self):
        graph = TaskGraph([Task(task_id=f"t{i}") for i in range(5)])
        assert graph.ids() == [f"t{i}" for i in range(5)]
        assert len(graph) == 5
        assert graph[2].task_id == "t2"

    def test_rejects_duplicate_ids(self):
        graph = TaskGraph([Task(task_id="t")])
        with pytest.raises(EngineError):
            graph.add(Task(task_id="t"))

    def test_lookup(self):
        graph = TaskGraph([Task(task_id="a"), Task(task_id="b")])
        assert graph.index_of("b") == 1
        assert graph.get("a").task_id == "a"
        with pytest.raises(EngineError):
            graph.index_of("missing")

    def test_groups_in_first_appearance_order(self):
        graph = TaskGraph([Task(task_id="1", group="x"),
                           Task(task_id="2", group="y"),
                           Task(task_id="3", group="x")])
        assert graph.groups() == ["x", "y"]


class TestCanonicalJson:
    def test_key_order_independent(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_rejects_unserialisable(self):
        with pytest.raises(EngineError):
            canonical_json({"fn": lambda: None})


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path), namespace="test")
        key = cache.key_for({"x": 1})
        assert cache.get(key) is MISS
        cache.put(key, {"value": 42}, task_id="t")
        assert cache.get(key) == {"value": 42}
        assert cache.stats() == {"hits": 1, "misses": 1, "artifacts": 1,
                                 "evictions": 0}

    def test_cached_none_is_not_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for({"x": 1})
        cache.put(key, None)
        assert cache.get(key) is None

    def test_spec_change_invalidates(self, tmp_path):
        cache = ResultCache(str(tmp_path), namespace="test")
        key_a = cache.key_for({"deltas": {"dac_sum": 0.05}})
        key_b = cache.key_for({"deltas": {"dac_sum": 0.06}})
        assert key_a != key_b
        cache.put(key_a, "a")
        assert cache.get(key_b) is MISS

    def test_seed_material_partitions_keys(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        assert cache.key_for({"x": 1}, "int:1") != cache.key_for({"x": 1}, "int:2")

    def test_namespace_and_version_partition_keys(self, tmp_path):
        spec = {"x": 1}
        key_ns1 = ResultCache(str(tmp_path), namespace="a").key_for(spec)
        key_ns2 = ResultCache(str(tmp_path), namespace="b").key_for(spec)
        key_v2 = ResultCache(str(tmp_path), namespace="a",
                             version="0.0.0-test").key_for(spec)
        assert len({key_ns1, key_ns2, key_v2}) == 3

    def test_corrupt_artifact_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for({"x": 1})
        cache.put(key, "fine")
        path = os.path.join(str(tmp_path), f"{key}.json")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("{torn")
        assert cache.get(key) is MISS

    def test_non_dict_artifact_is_a_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        key = cache.key_for({"x": 1})
        path = os.path.join(str(tmp_path), f"{key}.json")
        for body in ("null", "[1, 2]", '"text"'):
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(body)
            assert cache.get(key) is MISS

    def test_clear_and_keys(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for i in range(3):
            cache.put(cache.key_for({"i": i}), i)
        assert len(cache.keys()) == 3
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_unserialisable_result_raises(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(EngineError):
            cache.put(cache.key_for({"x": 1}), object())

    def test_artifact_is_json_on_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path), namespace="test")
        key = cache.key_for({"x": 1})
        cache.put(key, [1, 2, 3], task_id="t", spec={"x": 1})
        with open(os.path.join(str(tmp_path), f"{key}.json"),
                  encoding="utf-8") as handle:
            entry = json.load(handle)
        assert entry["key"] == key
        assert entry["task_id"] == "t"
        assert entry["spec"] == {"x": 1}
        assert entry["result"] == [1, 2, 3]

    def test_requires_cache_dir(self):
        with pytest.raises(EngineError):
            ResultCache("")


class TestCallableToken:
    def test_function_and_class(self):
        assert callable_token(canonical_json) == \
            "repro.engine.cache.canonical_json"
        assert callable_token(ResultCache) == "repro.engine.cache.ResultCache"

    def test_unnameable_callables_get_none(self):
        class Factory:
            def __call__(self):
                return None

        assert callable_token(Factory()) is None
