"""Telemetry layer: event streams, spans, sinks and the trace analyzers.

Covers the tentpole guarantees of the observability layer:

* the engine emits a complete, *reconciling* event stream from both the
  flat and the dependency-graph scheduler (counts match the
  :class:`~repro.engine.CampaignReport` exactly, including cached, failed
  and skipped tasks);
* the logical event stream is backend-invariant (serial x multiprocess x
  shm produce the same events modulo timestamps, ordering and worker pids)
  -- checked over randomized workloads drawn from the backend-equivalence
  suite's seeded case generator;
* the JSONL trace is crash-safe to read (a truncated trailing line is
  tolerated, corruption elsewhere is an error);
* the Chrome exporter produces structurally valid trace-event JSON;
* the progress sink renders and refreshes in place;
* the metrics sink folds the stream into counters/gauges/histograms.
"""

import io
import json

import numpy as np
import pytest

from repro.circuit.errors import EngineError, TaskExecutionError
from repro.engine import (CampaignEngine, ChromeTraceSink, EVENT_TYPES,
                          JsonlTraceSink, MetricsSink, MultiprocessBackend,
                          ProgressSink, ResultCache, SerialBackend,
                          SharedMemoryBackend, Task, TaskGraph, TelemetryBus,
                          TelemetryEvent, TelemetrySink, block_study,
                          chrome_trace, format_summary, read_trace,
                          run_study, summarize_trace)
from repro.engine.spec import BLOCK_STUDY

from test_backend_equivalence import CASES

#: The event types that terminate a task (one per task per run).
TERMINAL = ("task_completed", "cache_hit", "task_failed", "task_skipped")


class CollectSink(TelemetrySink):
    def __init__(self):
        self.events = []

    def handle(self, event):
        self.events.append(event)


def collecting_bus():
    sink = CollectSink()
    return TelemetryBus([sink]), sink


def _double(context, task, rng):
    return task.payload * 2


def _sum_inputs(context, task, rng, inputs):
    if task.payload == "boom":
        raise ValueError("exploding task")
    base = task.payload if isinstance(task.payload, int) else 0
    return base + sum(inputs.values())


def _counts(events):
    return {etype: sum(1 for e in events if e.type == etype)
            for etype in EVENT_TYPES}


def _assert_reconciles(events, report):
    counts = _counts(events)
    assert counts["task_completed"] == report.n_executed
    assert counts["cache_hit"] == report.n_cache_hits
    assert counts["task_failed"] == report.n_failed
    assert counts["task_skipped"] == report.n_skipped
    assert counts["run_started"] == 1
    assert counts["run_finished"] == 1
    finished = [e for e in events if e.type == "run_finished"][0]
    assert finished.data["n_tasks"] == report.n_tasks
    assert finished.data["n_executed"] == report.n_executed
    assert finished.data["n_cache_hits"] == report.n_cache_hits
    assert finished.data["n_failed"] == report.n_failed
    assert finished.data["n_skipped"] == report.n_skipped


class TestEventBus:
    def test_unknown_event_type_is_rejected(self):
        bus = TelemetryBus([])
        with pytest.raises(EngineError, match="unknown telemetry event"):
            bus.emit("task_exploded")

    def test_event_jsonable_round_trip(self):
        event = TelemetryEvent(type="task_completed", t=1.25,
                               task_id="t/0", stage="campaign",
                               group="sc_array", worker=42,
                               data={"duration": 0.5})
        assert TelemetryEvent.from_jsonable(
            json.loads(json.dumps(event.to_jsonable()))) == event

    def test_none_fields_dropped_from_json(self):
        record = TelemetryEvent(type="run_started", t=0.0).to_jsonable()
        assert record == {"type": "run_started", "t": 0.0}

    def test_bus_stamps_monotonic_time(self):
        bus, sink = collecting_bus()
        bus.emit("run_started")
        bus.emit("run_finished")
        first, second = sink.events
        assert second.t >= first.t > 0


class TestFlatRunEvents:
    def test_stream_reconciles_with_report(self):
        bus, sink = collecting_bus()
        run = CampaignEngine(telemetry=bus).run(
            [Task(task_id=f"t/{i}", payload=i) for i in range(6)], _double)
        _assert_reconciles(sink.events, run.report)
        counts = _counts(sink.events)
        assert counts["task_submitted"] == 6
        assert counts["task_started"] == 6

    def test_span_phases_present_and_nonnegative(self):
        bus, sink = collecting_bus()
        CampaignEngine(telemetry=bus).run(
            [Task(task_id=f"t/{i}", payload=i) for i in range(3)], _double)
        completed = [e for e in sink.events if e.type == "task_completed"]
        assert len(completed) == 3
        for event in completed:
            assert event.worker is not None
            for phase in ("queue_wait", "deserialize", "execute", "ship",
                          "worker_seconds", "duration"):
                assert event.data[phase] >= 0.0

    def test_cache_hits_emit_no_submission(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = [Task(task_id=f"t/{i}", payload=i,
                      spec={"op": "double", "i": i}, deterministic=True)
                 for i in range(4)]
        CampaignEngine(cache=cache).run(tasks, _double)
        bus, sink = collecting_bus()
        run = CampaignEngine(cache=cache, telemetry=bus).run(tasks, _double)
        assert run.report.n_cache_hits == 4
        _assert_reconciles(sink.events, run.report)
        assert _counts(sink.events)["task_submitted"] == 0

    def test_no_bus_emits_nothing_and_still_runs(self):
        run = CampaignEngine().run(
            [Task(task_id="t/0", payload=1)], _double)
        assert run.results == [2]


class TestGraphRunEvents:
    def _diamond(self):
        graph = TaskGraph()
        graph.add(Task(task_id="root", payload=1))
        graph.add(Task(task_id="left", payload=10, depends_on=("root",)))
        graph.add(Task(task_id="right", payload=20, depends_on=("root",)))
        graph.add(Task(task_id="join", payload=0,
                       depends_on=("left", "right")))
        return graph

    def test_deps_recorded_and_topologically_ordered(self):
        bus, sink = collecting_bus()
        run = CampaignEngine(telemetry=bus).run(
            self._diamond(), _sum_inputs,
            stage_of={"root": "produce", "left": "map", "right": "map",
                      "join": "reduce"})
        _assert_reconciles(sink.events, run.report)
        submitted = {e.task_id: e.data["deps"] for e in sink.events
                     if e.type == "task_submitted"}
        assert submitted["join"] == ["left", "right"]
        order = [e.task_id for e in sink.events
                 if e.type == "task_submitted"]
        assert order.index("root") < order.index("left")
        assert order.index("left") < order.index("join")

    def test_stage_completed_totals(self):
        bus, sink = collecting_bus()
        CampaignEngine(telemetry=bus).run(
            self._diamond(), _sum_inputs,
            stage_of={"root": "produce", "left": "map", "right": "map",
                      "join": "reduce"})
        stages = {e.stage: e.data for e in sink.events
                  if e.type == "stage_completed"}
        assert set(stages) == {"produce", "map", "reduce"}
        assert stages["map"]["total"] == 2
        assert stages["map"]["executed"] == 2
        assert stages["map"]["failed"] == 0

    def test_failure_and_skip_events_reconcile(self):
        graph = TaskGraph()
        graph.add(Task(task_id="ok", payload=1))
        graph.add(Task(task_id="bad", payload="boom"))
        graph.add(Task(task_id="child", payload=2, depends_on=("bad",)))
        graph.add(Task(task_id="grandchild", payload=3,
                       depends_on=("child",)))
        bus, sink = collecting_bus()
        run = CampaignEngine(telemetry=bus).run(graph, _sum_inputs,
                                                on_failure="skip")
        assert run.report.n_failed == 1 and run.report.n_skipped == 2
        _assert_reconciles(sink.events, run.report)
        failed = [e for e in sink.events if e.type == "task_failed"]
        assert failed[0].task_id == "bad"
        assert "exploding task" in failed[0].data["error"]
        assert {e.task_id for e in sink.events
                if e.type == "task_skipped"} == {"child", "grandchild"}

    def test_trace_of_raising_run_still_reconciles(self):
        graph = TaskGraph()
        graph.add(Task(task_id="bad", payload="boom"))
        graph.add(Task(task_id="child", payload=1, depends_on=("bad",)))
        bus, sink = collecting_bus()
        with pytest.raises(TaskExecutionError) as excinfo:
            CampaignEngine(telemetry=bus).run(graph, _sum_inputs)
        _assert_reconciles(sink.events, excinfo.value.run.report)

    def test_report_stage_failed_skipped_and_summary(self):
        graph = TaskGraph()
        graph.add(Task(task_id="bad", payload="boom"))
        graph.add(Task(task_id="child", payload=1, depends_on=("bad",)))
        run = CampaignEngine().run(
            graph, _sum_inputs, on_failure="skip",
            stage_of={"bad": "produce", "child": "reduce"})
        assert run.report.stage_failed == {"produce": 1}
        assert run.report.stage_skipped == {"reduce": 1}
        line = run.report.stage_summary()
        assert "produce 0 tasks/0.00s (1 failed, 0 skipped)" in line
        assert "reduce 0 tasks/0.00s (0 failed, 1 skipped)" in line


class TestThroughputSatellite:
    def test_tasks_per_second_excludes_cache_hits(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = [Task(task_id=f"t/{i}", payload=i, spec={"i": i},
                      deterministic=True) for i in range(5)]
        CampaignEngine(cache=cache).run(tasks, _double)
        warm = CampaignEngine(cache=cache).run(tasks, _double)
        assert warm.report.n_cache_hits == 5
        assert warm.report.tasks_per_second == 0.0
        assert warm.report.graph_tasks_per_second > 0.0

    def test_executed_run_reports_positive_throughput(self):
        run = CampaignEngine().run(
            [Task(task_id=f"t/{i}", payload=i) for i in range(3)], _double)
        assert run.report.tasks_per_second > 0.0
        assert run.report.graph_tasks_per_second >= \
            run.report.tasks_per_second


# One randomized case of each kind from the backend-equivalence generator:
# enough to span every driver (flat campaigns, calibration, the yield
# sweep, and both study graphs) without re-running all ~23 cases.
EQUIVALENCE_CASES = [next(c for c in CASES if c["kind"] == kind)
                     for kind in ("campaign", "calibration", "yield",
                                  "pipeline", "block-study")]


def _event_signature(events):
    """The backend-invariant projection of an event stream.

    Timestamps, ordering, worker pids and span durations differ per
    backend; the logical stream -- which tasks were submitted, resolved
    how, in which stage, and the stage/run totals -- must not.
    """
    terminal = sorted((e.type, e.task_id, e.stage, e.group)
                      for e in events if e.type in TERMINAL)
    submitted = sorted((e.task_id, tuple(e.data["deps"]))
                       for e in events if e.type == "task_submitted")
    started = [e for e in events if e.type == "run_started"]
    finished = [e for e in events if e.type == "run_finished"]
    stages = sorted((e.stage, e.data["total"], e.data["executed"],
                     e.data["cached"], e.data["failed"], e.data["skipped"])
                    for e in events if e.type == "stage_completed")
    return {
        "terminal": terminal,
        "submitted": submitted,
        "run_started": [(e.data["n_tasks"], e.data["mode"],
                         e.data["stages"]) for e in started],
        "run_finished": [{key: e.data[key]
                          for key in ("n_tasks", "n_executed",
                                      "n_cache_hits", "n_failed",
                                      "n_skipped")} for e in finished],
        "stages": stages,
    }


def _run_case_events(case, backend, deltas, calibration):
    """Execute one randomized spec with telemetry; return the signature."""
    from repro.adc import SarAdc
    from repro.analysis import yield_loss_sweep
    from repro.core import collect_defect_free_residuals
    from repro.defects import DefectCampaign, SamplingPlan
    from repro.engine import calibrate_then_campaign

    bus, sink = collecting_bus()
    kind = case["kind"]
    if kind == "campaign":
        campaign = DefectCampaign(
            adc=SarAdc(), deltas=deltas,
            stop_on_detection=case["stop_on_detection"])
        plan = SamplingPlan(exhaustive=case["exhaustive"],
                            n_samples=case["n_samples"])
        campaign.run(plan, blocks=[case["block"]],
                     rng=np.random.default_rng(case["seed"]),
                     backend=backend, telemetry=bus)
    elif kind == "calibration":
        collect_defect_free_residuals(
            n_monte_carlo=case["n_mc"],
            rng=np.random.default_rng(case["seed"]), backend=backend,
            telemetry=bus)
    elif kind == "yield":
        yield_loss_sweep(calibration, k_values=case["k_values"],
                         backend=backend, telemetry=bus)
    elif kind == "pipeline":
        calibrate_then_campaign(
            n_monte_carlo=3, seed=case["seed"], blocks=[case["block"]],
            samples=case["n_samples"], backend=backend, telemetry=bus)
    else:  # block-study
        block_study(
            n_monte_carlo=3, seed=case["seed"], blocks=case["blocks"],
            samples=case["n_samples"],
            exhaustive_threshold=case["threshold"], backend=backend,
            telemetry=bus)
    return _event_signature(sink.events)


_SERIAL_EVENT_BASELINE = {}


@pytest.mark.parametrize("backend_name", ["multiprocess", "shm"])
@pytest.mark.parametrize("case", EQUIVALENCE_CASES,
                         ids=[c["id"] for c in EQUIVALENCE_CASES])
def test_event_stream_matches_serial(case, backend_name, deltas, calibration):
    if case["id"] not in _SERIAL_EVENT_BASELINE:
        _SERIAL_EVENT_BASELINE[case["id"]] = _run_case_events(
            case, SerialBackend(), deltas, calibration)
    backend = {"multiprocess": MultiprocessBackend,
               "shm": SharedMemoryBackend}[backend_name](max_workers=2)
    assert _run_case_events(case, backend, deltas, calibration) == \
        _SERIAL_EVENT_BASELINE[case["id"]]


class TestJsonlTrace:
    def _write_trace(self, path):
        bus = TelemetryBus([JsonlTraceSink(path)])
        run = CampaignEngine(telemetry=bus).run(
            [Task(task_id=f"t/{i}", payload=i) for i in range(4)], _double)
        bus.close()
        return run

    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        run = self._write_trace(path)
        events = read_trace(path)
        _assert_reconciles(events, run.report)

    def test_truncated_final_line_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._write_trace(path)
        whole = read_trace(path)
        text = path.read_text()
        path.write_text(text[:-20])  # cut into the last record
        events = read_trace(path)
        assert [e.type for e in events] == [e.type for e in whole][:-1]

    def test_corruption_elsewhere_raises(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._write_trace(path)
        lines = path.read_text().splitlines()
        lines[1] = "{not json"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(EngineError, match="line 2"):
            read_trace(path)

    def test_append_mode_accumulates_runs(self, tmp_path):
        path = tmp_path / "run.jsonl"
        self._write_trace(path)
        self._write_trace(path)
        starts = [e for e in read_trace(path) if e.type == "run_started"]
        assert len(starts) == 2

    def test_missing_file_is_a_clean_error(self, tmp_path):
        with pytest.raises(EngineError, match="cannot read trace"):
            read_trace(tmp_path / "nope.jsonl")

    def test_closed_sink_rejects_events(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "run.jsonl")
        sink.close()
        with pytest.raises(EngineError, match="closed"):
            sink.handle(TelemetryEvent(type="run_started", t=0.0))


class TestChromeExport:
    def test_export_is_valid_trace_event_json(self, tmp_path):
        path = tmp_path / "run.chrome.json"
        bus = TelemetryBus([ChromeTraceSink(path)])
        run = CampaignEngine(
            backend=MultiprocessBackend(max_workers=2),
            telemetry=bus).run(
            [Task(task_id=f"t/{i}", payload=i) for i in range(6)], _double)
        bus.close()
        data = json.loads(path.read_text())
        assert data["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        assert isinstance(events, list) and events
        for entry in events:
            assert entry["ph"] in ("X", "i", "M")
            assert "pid" in entry and "tid" in entry and "name" in entry
        slices = [entry for entry in events if entry["ph"] == "X"]
        assert len(slices) == run.report.n_executed
        for entry in slices:
            assert entry["ts"] >= 0 and entry["dur"] >= 0
        thread_names = [entry for entry in events
                        if entry.get("name") == "thread_name"]
        named_tids = {entry["tid"] for entry in thread_names}
        assert {entry["tid"] for entry in slices} <= named_tids

    def test_instants_for_cache_hits_and_failures(self):
        events = [
            TelemetryEvent(type="run_started", t=0.0, data={"n_tasks": 2}),
            TelemetryEvent(type="cache_hit", t=0.1, task_id="a"),
            TelemetryEvent(type="task_failed", t=0.2, task_id="b",
                           data={"error": "boom"}),
        ]
        rows = chrome_trace(events)["traceEvents"]
        instants = [row for row in rows if row["ph"] == "i"]
        assert any(row["name"] == "cache a" for row in instants)
        assert any(row["name"] == "FAIL b" for row in instants)

    def test_empty_stream(self):
        assert chrome_trace([]) == {"traceEvents": [],
                                    "displayTimeUnit": "ms"}


class TestProgressSink:
    def test_render_line(self):
        line = ProgressSink.render(
            done=3, total=10, executed=2, elapsed=2.0,
            stage_done={"calibrate": 3}, stage_totals={"calibrate": 5})
        assert "3/10 tasks" in line
        assert "calibrate 3/5" in line
        assert "1.0 tasks/s" in line
        # ETA from the overall completion rate (3 done in 2s -> 1.5/s,
        # 7 remaining -> ~4.7s), not the executed-only rate.
        assert "ETA 5s" in line

    def test_warm_cache_eta_uses_completion_rate(self):
        # 8 of 10 tasks resolved from cache, 1 executed: the executed-only
        # rate (0.5/s) would predict ETA 2s for the last task even though
        # tasks are completing at 4.5/s.  The ETA must track completion.
        line = ProgressSink.render(
            done=9, total=10, executed=1, elapsed=2.0,
            stage_done={}, stage_totals={})
        assert "ETA 0s" in line
        assert "ETA 2s" not in line

    def test_refreshes_in_place_and_finishes_line(self):
        stream = io.StringIO()
        bus = TelemetryBus([ProgressSink(stream=stream, min_interval=0.0)])
        CampaignEngine(telemetry=bus).run(
            [Task(task_id=f"t/{i}", payload=i) for i in range(3)], _double)
        bus.close()
        text = stream.getvalue()
        assert text.count("\r") >= 3
        assert text.endswith("3/3 tasks" + text.split("3/3 tasks")[-1])
        assert text.endswith("\n")

    def test_throttles_between_terminal_events(self):
        stream = io.StringIO()
        sink = ProgressSink(stream=stream, min_interval=3600.0)
        bus = TelemetryBus([sink])
        CampaignEngine(telemetry=bus).run(
            [Task(task_id=f"t/{i}", payload=i) for i in range(20)], _double)
        bus.close()
        # run_started + run_finished always render; the 20 per-task events
        # are throttled away.
        assert stream.getvalue().count("\r") == 2


class TestMetricsSink:
    def test_folds_run_into_registry(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        tasks = [Task(task_id=f"t/{i}", payload=i, spec={"i": i},
                      deterministic=True) for i in range(4)]
        CampaignEngine(cache=cache).run(tasks, _double)
        tasks.extend(Task(task_id=f"u/{i}", payload=i) for i in range(2))
        sink = MetricsSink()
        run = CampaignEngine(cache=cache,
                             telemetry=TelemetryBus([sink])).run(
            tasks, _double)
        snapshot = sink.registry.as_dict()
        assert snapshot["counters"]["tasks_executed"] == run.report.n_executed
        assert snapshot["counters"]["cache_hits"] == run.report.n_cache_hits
        assert snapshot["gauges"]["engine_queue_depth"] == 0
        hist = snapshot["histograms"]["task_execute_seconds"]
        assert hist["count"] == run.report.n_executed
        assert any(key.startswith("worker_utilization")
                   for key in snapshot["gauges"])
        assert snapshot["gauges"]["run_wall_seconds"] > 0

    def test_stage_cache_hit_rate(self):
        sink = MetricsSink()
        bus = TelemetryBus([sink])
        graph = TaskGraph()
        graph.add(Task(task_id="a", payload=1))
        graph.add(Task(task_id="b", payload=2, depends_on=("a",)))
        CampaignEngine(telemetry=bus).run(graph, _sum_inputs,
                                          stage_of={"a": "s1", "b": "s2"})
        gauges = sink.registry.as_dict()["gauges"]
        assert gauges["stage_cache_hit_rate{stage=s1}"] == 0.0


class TestTraceSummary:
    def test_diamond_critical_path(self):
        bus, sink = collecting_bus()
        graph = TaskGraph()
        graph.add(Task(task_id="root", payload=1))
        graph.add(Task(task_id="left", payload=10, depends_on=("root",)))
        graph.add(Task(task_id="right", payload=20, depends_on=("root",)))
        graph.add(Task(task_id="join", payload=0,
                       depends_on=("left", "right")))
        run = CampaignEngine(telemetry=bus).run(graph, _sum_inputs)
        summary = summarize_trace(sink.events)
        assert summary.counts == {
            "n_tasks": 4, "n_executed": 4, "n_cache_hits": 0,
            "n_failed": 0, "n_skipped": 0}
        path = summary.critical_path
        assert path[0] == "root" and path[-1] == "join" and len(path) == 3
        assert summary.critical_path_seconds > 0
        assert run.report.n_executed == 4

    def test_summary_tables_and_phases(self):
        bus, sink = collecting_bus()
        graph = TaskGraph()
        graph.add(Task(task_id="a", payload=1))
        graph.add(Task(task_id="b", payload=2, depends_on=("a",)))
        CampaignEngine(telemetry=bus).run(graph, _sum_inputs,
                                          stage_of={"a": "s1", "b": "s2"})
        summary = summarize_trace(sink.events)
        assert {row.stage for row in summary.stages} == {"s1", "s2"}
        assert summary.worker_rows and summary.worker_rows[0].tasks == 2
        assert set(summary.phase_seconds) == \
            {"queue_wait", "deserialize", "execute", "ship"}
        text = format_summary(summary)
        assert "critical path: 2 tasks" in text
        assert "per-stage:" in text and "per-worker:" in text

    def test_empty_trace_is_an_error(self):
        with pytest.raises(EngineError, match="empty"):
            summarize_trace([])

    def test_recorded_zero_wall_time_survives(self):
        # A sub-resolution fully-cached run legitimately records
        # wall_time 0.0 on run_finished; a falsy check would clobber it
        # with the event-stream extent (here 5.0s).
        events = [
            TelemetryEvent(type="run_started", t=10.0,
                           data={"n_tasks": 1}),
            TelemetryEvent(type="cache_hit", t=12.0, task_id="a"),
            TelemetryEvent(type="run_finished", t=15.0,
                           data={"wall_time": 0.0, "n_tasks": 1,
                                 "n_cache_hits": 1}),
        ]
        summary = summarize_trace(events)
        assert summary.wall_time == 0.0

    def test_interrupted_trace_falls_back_to_stream_extent(self):
        events = [
            TelemetryEvent(type="run_started", t=10.0,
                           data={"n_tasks": 2}),
            TelemetryEvent(type="cache_hit", t=12.5, task_id="a"),
        ]
        assert summarize_trace(events).wall_time == 2.5


class TestBatchedTelemetry:
    """Batch tasks are counted as tasks; defects are counted as items.

    The reconciliation contract of batched campaigns: terminal task events
    count *batches*, their ``items`` payloads sum to the per-defect totals,
    ``stage_summary()``/``trace summarize`` surface those totals, and the
    throughput figures keep counting executed tasks only.
    """

    def _batched_campaign(self, deltas, batch_size, cache=None):
        from repro.adc import SarAdc
        from repro.defects import DefectCampaign, SamplingPlan

        campaign = DefectCampaign(adc=SarAdc(), deltas=deltas)
        plan = SamplingPlan(exhaustive=False, n_samples=12)
        bus, sink = collecting_bus()
        result = campaign.run(plan, blocks=["vcm_generator"],
                              rng=np.random.default_rng(5), telemetry=bus,
                              cache=cache, batch_size=batch_size)
        return result, sink.events

    def test_task_events_count_batches_and_items_count_defects(self, deltas):
        result, events = self._batched_campaign(deltas, batch_size=5)
        completed = [e for e in events if e.type == "task_completed"]
        # 12 defects in batches of 5 -> 3 batch tasks ...
        assert len(completed) == 3
        assert result.engine_report.n_executed == 3
        # ... whose item payloads sum back to the per-defect total.
        assert sum(e.data["items"] for e in completed) == 12
        assert len(result.records) == 12
        _assert_reconciles(events, result.engine_report)

    def test_trace_summary_reports_item_totals(self, deltas):
        result, events = self._batched_campaign(deltas, batch_size=5)
        summary = summarize_trace(events)
        assert summary.counts["n_executed"] == 3
        assert summary.n_items == 12
        assert "[12 items]" in format_summary(summary)

    def test_unbatched_stream_and_summary_are_unchanged(self, deltas):
        """batch_size=1 must not leak batching into the telemetry surface:
        no ``items`` payloads, no items clause in the rendered summary."""
        result, events = self._batched_campaign(deltas, batch_size=1)
        assert all("items" not in e.data for e in events)
        summary = summarize_trace(events)
        assert summary.n_items == summary.counts["n_executed"]
        assert "items" not in format_summary(summary)
        assert "items" not in result.engine_report.stage_summary()

    def test_throughput_stays_executed_only(self, deltas, tmp_path):
        """Cache-hit batches contribute items to the trace but never to
        ``tasks_per_second``."""
        cache = ResultCache(tmp_path / "cache")
        self._batched_campaign(deltas, batch_size=5, cache=cache)
        warm, events = self._batched_campaign(deltas, batch_size=5,
                                              cache=cache)
        report = warm.engine_report
        assert report.n_cache_hits == 3 and report.n_executed == 0
        assert report.tasks_per_second == 0.0
        hits = [e for e in events if e.type == "cache_hit"]
        assert sum(e.data["items"] for e in hits) == 12
        assert summarize_trace(events).n_items == 12

    def test_block_study_stage_summary_reports_defect_totals(self, deltas):
        """The study graph's campaign stage counts batches as tasks and
        defects as items, and renders the item total next to the stage."""
        outcome = block_study(
            n_monte_carlo=3, seed=11,
            blocks=["vcm_generator", "offset_compensation"], samples=5,
            batch_size=4)
        n_defects = sum(len(result.records)
                        for result in outcome.results.values())
        report = outcome.report
        assert report.stage_items["campaign"] == n_defects
        assert report.stage_counts["campaign"] < n_defects
        assert f"[{n_defects} items]" in report.stage_summary()


class TestStudyTelemetry:
    def test_block_study_trace_reconciles_and_summarizes(self, tmp_path):
        """The acceptance-criterion path: a block-study run with a JSONL
        trace whose counts reconcile exactly with the engine report."""
        path = tmp_path / "study.jsonl"
        bus = TelemetryBus([JsonlTraceSink(path)])
        spec = BLOCK_STUDY.override({
            "calibrate.n_monte_carlo": 3, "seed": 7,
            "campaign.blocks": ["vcm_generator"], "campaign.samples": 5})
        outcome = run_study(spec, backend=SharedMemoryBackend(max_workers=2),
                            telemetry=bus)
        bus.close()
        events = read_trace(path)
        _assert_reconciles(events, outcome.report)
        summary = summarize_trace(events)
        assert summary.backend == "shm" and summary.workers == 2
        assert summary.n_tasks == outcome.report.n_tasks
        stage_names = {row.stage for row in summary.stages}
        assert {"calibrate", "windows", "campaign", "summary"} <= stage_names
        # The study graph's spine must appear in the critical path: a
        # calibration instance before the windows reduction before any
        # campaign/summary descendant.
        assert any(tid.startswith("calib/")
                   for tid in summary.critical_path)
        chrome = chrome_trace(events)
        assert len([row for row in chrome["traceEvents"]
                    if row["ph"] == "X"]) == outcome.report.n_executed
