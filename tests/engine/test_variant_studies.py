"""Multi-variant DUT studies: fan-out, seeding and backend equivalence.

The study layer compiles ``[[variants]]`` into per-variant stage instances
inside ONE task graph; these tests pin the guarantees that make that safe:
every variant gets its own derived root seed and cache identity, the
per-variant results are bit-identical across serial / multiprocess /
shared-memory backends (under a randomized root seed), and a variant that
changes the device (the 8-bit DUT) actually runs a different device.
"""

import random

import numpy as np
import pytest

from repro.defects import variant_seed
from repro.dut import DutSpec
from repro.engine import (MultiprocessBackend, ResultCache,
                          SharedMemoryBackend, StageSpec, StudySpec,
                          VariantSpec, build_study, run_study)

#: Randomized root seed, printed on failure via the parametrized id; one
#: draw per test session keeps the three backend runs comparable.
ROOT_SEED = random.Random().randrange(2 ** 31)

BLOCK = "vcm_generator"


def _variant_study(seed):
    return StudySpec(
        name="variant-equivalence",
        seed=seed,
        stages=(
            StageSpec(stage="calibrate", params={"n_monte_carlo": 3}),
            StageSpec(stage="windows", after=("calibrate",),
                      params={"k": 5.0, "per_block": True}),
            StageSpec(stage="campaign", after=("windows",),
                      params={"samples": 4, "exhaustive_threshold": 8,
                              "blocks": [BLOCK]}),
            StageSpec(stage="block-summary", name="summary",
                      after=("windows", "campaign")),
        ),
        variants=(
            VariantSpec(name="nominal"),
            VariantSpec(name="eight-bit", dut={"resolution_bits": 8}),
            VariantSpec(name="vdd-low", dut={"vdd": 1.08}),
        ),
    ).validated()


def _variant_digest(outcome):
    """Deterministic content of one variant's outcome, as comparable data
    (wall-clock fields legitimately differ between backends and are
    excluded)."""
    result = outcome.results[BLOCK]
    return {
        "records": [(r.defect.defect_id, r.detected,
                     r.detecting_invariance, r.detection_cycle,
                     r.cycles_run, r.modeled_sim_time)
                    for r in result.records],
        "deltas": outcome.calibrations[BLOCK].deltas,
        "summary": {key: value
                    for key, value in outcome.summaries[BLOCK].items()
                    if key not in ("timing", "wall_time")},
    }


def _all_digests(outcome):
    return {name: _variant_digest(sub)
            for name, sub in outcome.variants.items()}


class TestVariantFanOut:
    def test_plan_has_per_variant_builds_and_seeds(self):
        spec = _variant_study(ROOT_SEED)
        plan = build_study(spec)
        assert sorted(plan.variants) == ["eight-bit", "nominal", "vdd-low"]
        seeds = {name: variant_seed(ROOT_SEED, name)
                 for name in plan.variants}
        assert len(set(seeds.values())) == 3
        assert all(seed != ROOT_SEED for seed in seeds.values())
        fingerprints = {name: vplan.dut_fingerprint
                        for name, vplan in plan.variants.items()}
        assert fingerprints["nominal"] == DutSpec().fingerprint()
        assert fingerprints["eight-bit"] == \
            DutSpec(resolution_bits=8).fingerprint()
        assert len(set(fingerprints.values())) == 3

    def test_variant_seed_is_stable_and_label_sensitive(self):
        assert variant_seed(7, "a") == variant_seed(7, "a")
        assert variant_seed(7, "a") != variant_seed(7, "b")
        assert variant_seed(7, "a") != variant_seed(8, "a")
        assert 0 <= variant_seed(7, "a") < 2 ** 63


#: Serial baseline, computed once and shared by the backend cases.
_SERIAL_BASELINE = {}


def _serial_digests():
    if "digests" not in _SERIAL_BASELINE:
        outcome = run_study(_variant_study(ROOT_SEED))
        assert outcome.ok, f"root seed {ROOT_SEED}"
        _SERIAL_BASELINE["digests"] = _all_digests(outcome)
    return _SERIAL_BASELINE["digests"]


class TestBackendEquivalence:
    @pytest.mark.parametrize("backend_factory", [
        lambda: MultiprocessBackend(max_workers=2),
        lambda: SharedMemoryBackend(max_workers=2),
    ], ids=["multiprocess", "shm"])
    def test_eight_bit_variant_study_identical_across_backends(
            self, backend_factory):
        """Randomized equivalence case (root seed drawn per session): every
        backend must reproduce the serial per-variant results exactly."""
        spec = _variant_study(ROOT_SEED)
        outcome = run_study(spec, backend=backend_factory())
        assert outcome.ok, f"root seed {ROOT_SEED}"
        assert _all_digests(outcome) == _serial_digests(), \
            f"root seed {ROOT_SEED}"

    def test_variants_produce_distinct_results(self):
        digests = _serial_digests()
        # The 8-bit device has its own universe/windows; at minimum its
        # sampled defects differ from the nominal 10-bit run.
        assert digests["eight-bit"]["records"] != \
            digests["nominal"]["records"]

    def test_variants_never_share_cache_artifacts(self, tmp_path):
        import json
        import os
        spec = _variant_study(ROOT_SEED)
        cache = ResultCache(str(tmp_path / "cache"), namespace="engine")
        cold = run_study(spec, cache=cache)
        assert cold.ok
        cold_artifacts = len(cache)
        # Every artifact belongs to exactly one variant: its spec carries
        # the variant annotation matching its task-id prefix.  (LWRS samples
        # with replacement, so a defect drawn twice within one variant may
        # legitimately share an artifact -- across variants never.)
        seen_variants = set()
        for name in os.listdir(cache.cache_dir):
            if not name.endswith(".json"):
                continue
            with open(os.path.join(cache.cache_dir, name),
                      encoding="utf-8") as handle:
                entry = json.load(handle)
            variant = entry["task_id"].split("/", 1)[0]
            spec_variant = entry["spec"].get("variant") or \
                entry["spec"].get("windows", {}).get("variant") or \
                entry["spec"].get("calibration", {}).get("variant")
            assert spec_variant == variant, entry["task_id"]
            seen_variants.add(variant)
        assert seen_variants == {"nominal", "eight-bit", "vdd-low"}
        # The warm replay reuses every artifact and reproduces the results.
        warm = run_study(spec, cache=cache)
        assert warm.ok
        assert len(cache) == cold_artifacts
        assert _all_digests(warm) == _all_digests(cold)
