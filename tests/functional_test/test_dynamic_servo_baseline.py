"""Tests for the dynamic test, the servo loop and the functional baseline."""

import numpy as np
import pytest

from repro.adc import AdcSpecification, SarAdc
from repro.circuit import FunctionalTestError
from repro.functional_test import (FunctionalBistBaseline, analyze_sine_capture,
                                   major_transition_codes, measure_transition,
                                   servo_linearity_probe, sine_fit_test)


class TestSineFit:
    def test_ideal_quantised_sine_enob_near_ten_bits(self):
        n = 1024
        periods = 7
        t = np.arange(n)
        sine = 511.5 + 511.5 * np.sin(2 * np.pi * periods * t / n)
        codes = np.round(sine)
        result = analyze_sine_capture(codes, periods)
        assert 9.5 < result.enob_bits < 10.3
        assert result.sndr_db > 58.0

    def test_defect_free_adc_dynamic_performance(self, adc):
        result = sine_fit_test(adc, n_samples=256)
        assert result.enob_bits > 9.0
        assert result.sfdr_db > 50.0

    def test_noisy_capture_degrades_enob(self):
        n, periods = 512, 7
        t = np.arange(n)
        clean = 512 + 400 * np.sin(2 * np.pi * periods * t / n)
        noisy = clean + np.random.default_rng(0).normal(0, 20, n)
        assert analyze_sine_capture(np.round(noisy), periods).enob_bits < \
            analyze_sine_capture(np.round(clean), periods).enob_bits - 2

    def test_stuck_converter_reports_floor(self):
        result = analyze_sine_capture(np.full(256, 512.0), 7)
        assert result.enob_bits == 0.0

    def test_input_validation(self):
        with pytest.raises(FunctionalTestError):
            analyze_sine_capture(np.zeros(16), 3)
        with pytest.raises(FunctionalTestError):
            analyze_sine_capture(np.zeros(256), 0)


class TestServo:
    def test_transition_level_matches_design(self, adc):
        measurement = measure_transition(adc, 528, tolerance=1e-4)
        assert abs(measurement.level - adc.code_to_input(528)) < 0.01
        assert measurement.conversions_used > 5

    def test_major_transition_codes(self):
        codes = major_transition_codes()
        assert 512 in codes and 2 in codes
        assert all(0 < c < 1024 for c in codes)

    def test_probe_returns_one_measurement_per_code(self, adc):
        results = servo_linearity_probe(adc, [256, 512, 768], tolerance=1e-3)
        assert set(results) == {256, 512, 768}
        assert results[256].level < results[512].level < results[768].level

    def test_invalid_codes_rejected(self, adc):
        with pytest.raises(FunctionalTestError):
            measure_transition(adc, 0)
        with pytest.raises(FunctionalTestError):
            servo_linearity_probe(adc, [])


class TestFunctionalBaseline:
    def test_defect_free_part_passes(self, adc):
        outcome = FunctionalBistBaseline(sine_samples=128).run(adc)
        assert not outcome.detected
        assert outcome.violations == []
        assert not outcome.gross_failure
        assert outcome.conversions_used > 300

    def test_catastrophic_defect_detected_as_gross_failure(self):
        adc = SarAdc()
        adc.bandgap.netlist.device("r3").defect.open_terminal = "p"
        outcome = FunctionalBistBaseline(sine_samples=128).run(adc)
        assert outcome.detected

    def test_linearity_defect_detected_by_spec_check(self):
        adc = SarAdc()
        adc.sarcell.dac.sc_array.netlist.device("cm_p").defect.value_scale = 1.5
        outcome = FunctionalBistBaseline(sine_samples=128).run(adc)
        assert outcome.detected
        assert outcome.violations

    def test_test_time_is_orders_of_magnitude_above_symbist(self, adc):
        """The motivation of the paper: functional test is slow."""
        outcome = FunctionalBistBaseline(sine_samples=128).run(adc)
        symbist_time = 1.23e-6
        assert outcome.test_time > 20 * symbist_time

    def test_static_only_baseline(self, adc):
        outcome = FunctionalBistBaseline(sine_samples=0).run(adc)
        assert outcome.dynamic is None
        assert not outcome.detected

    def test_custom_specification(self, adc):
        strict = AdcSpecification(min_enob_bits=10.5)  # unreachable
        outcome = FunctionalBistBaseline(spec=strict, sine_samples=128).run(adc)
        assert "enob" in outcome.violations
