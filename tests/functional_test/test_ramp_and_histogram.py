"""Tests for the static functional tests (ramp and histogram)."""

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.circuit import FunctionalTestError
from repro.functional_test import (TransferCurve, histogram_test,
                                   ideal_sine_histogram, linearity_from_curve,
                                   measure_transfer_curve,
                                   ramp_linearity_test,
                                   reduced_code_linearity_test, sine_samples,
                                   transition_levels)


class TestTransferCurve:
    def test_measure_transfer_curve_shape(self, adc):
        curve = measure_transfer_curve(adc, n_points=64)
        assert curve.n_points == 64
        assert curve.codes.min() >= 0 and curve.codes.max() <= 1023

    def test_codes_monotonic_for_defect_free_adc(self, adc):
        curve = measure_transfer_curve(adc, n_points=64)
        assert np.all(np.diff(curve.codes) >= 0)

    def test_transition_levels_sorted(self, adc):
        curve = measure_transfer_curve(adc, n_points=128)
        codes, levels = transition_levels(curve)
        assert np.all(np.diff(codes) > 0)
        assert np.all(np.diff(levels) > 0)

    def test_misaligned_curve_rejected(self):
        with pytest.raises(FunctionalTestError):
            TransferCurve(inputs=np.zeros(5), codes=np.zeros(4))

    def test_too_few_points_rejected(self, adc):
        with pytest.raises(FunctionalTestError):
            measure_transfer_curve(adc, n_points=2)


class TestLinearity:
    def test_defect_free_reduced_code_linearity(self, adc):
        result = reduced_code_linearity_test(adc, span_codes=32,
                                             samples_per_code=4)
        assert result.dnl_max_lsb < 0.6
        assert result.inl_max_lsb < 0.8
        assert result.missing_codes == 0
        assert abs(result.offset_lsb) < 2.0

    def test_linearity_performance_container(self, adc):
        result = reduced_code_linearity_test(adc, span_codes=16,
                                             samples_per_code=4)
        perf = result.as_performance()
        assert perf.dnl_max_lsb == pytest.approx(result.dnl_max_lsb)
        assert perf.missing_codes == result.missing_codes

    def test_subdac_defect_causes_missing_codes(self):
        adc = SarAdc()
        adc.sarcell.dac.subdac2.netlist.device("swp_16").defect.open_terminal = "p"
        result = reduced_code_linearity_test(adc, span_codes=64,
                                             samples_per_code=4)
        assert result.missing_codes > 0 or result.dnl_max_lsb > 1.0

    def test_gross_defect_raises_functional_error(self):
        adc = SarAdc()
        # Kill the comparator bias: the converter gets stuck at one code.
        adc.bandgap.netlist.device("r3").defect.open_terminal = "p"
        with pytest.raises(FunctionalTestError):
            reduced_code_linearity_test(adc, span_codes=16, samples_per_code=4)

    def test_coarse_sweep_does_not_invent_missing_codes(self, adc):
        result = ramp_linearity_test(adc, n_points=128)
        assert result.missing_codes == 0

    def test_curve_with_too_few_codes_rejected(self):
        curve = TransferCurve(inputs=np.linspace(0, 1, 8),
                              codes=np.array([5, 5, 5, 5, 6, 6, 6, 6]))
        with pytest.raises(FunctionalTestError):
            linearity_from_curve(curve)


class TestHistogram:
    def test_sine_samples_bounds(self):
        samples = sine_samples(0.5, 512)
        assert samples.max() <= 0.5 + 1e-12
        assert samples.min() >= -0.5 - 1e-12
        assert len(samples) == 512

    def test_ideal_histogram_total_mass(self):
        edges = np.linspace(-0.9, 0.9, 50)
        hist = ideal_sine_histogram(1.0, 0.0, 1000, edges)
        assert hist.sum() < 1000
        assert np.all(hist >= 0)

    def test_ideal_histogram_bathtub_shape(self):
        edges = np.linspace(-0.95, 0.95, 100)
        hist = ideal_sine_histogram(1.0, 0.0, 10000, edges)
        assert hist[0] > hist[len(hist) // 2]
        assert hist[-1] > hist[len(hist) // 2]

    def test_histogram_test_on_defect_free_adc(self, adc):
        result = histogram_test(adc, n_samples=1024)
        assert result.n_samples == 1024
        assert result.missing_codes <= 2
        assert result.dnl_max_lsb < 1.5
        assert result.first_code < 100 and result.last_code > 900

    def test_histogram_requires_enough_samples(self, adc):
        with pytest.raises(FunctionalTestError):
            histogram_test(adc, n_samples=64)

    def test_invalid_sine_parameters_rejected(self):
        with pytest.raises(FunctionalTestError):
            sine_samples(0.0, 100)
        with pytest.raises(FunctionalTestError):
            sine_samples(1.0, 0)
