"""End-to-end integration tests: calibrate -> test -> campaign -> report.

These tests exercise the full SymBIST flow the way the benchmarks and the
paper's experiments do, across package boundaries.
"""

import numpy as np
import pytest

from repro.adc import SarAdc
from repro.core import (CheckingMode, SymBistController, TestTimeModel,
                        WindowComparator, area_overhead, calibrate_windows,
                        format_confidence, run_symbist,
                        summarize_symbist_result)
from repro.defects import DefectCampaign, DefectKind, SamplingPlan
from repro.digital import LogicBist, build_sar_logic
from repro.functional_test import FunctionalBistBaseline


class TestFullSymBistFlow:
    def test_calibrate_then_pass_defect_free_population(self, deltas):
        """No defect-free instance (with fresh process variations) may fail:
        that would be yield loss, which k = 5 is chosen to avoid."""
        rng = np.random.default_rng(99)
        for _ in range(5):
            adc = SarAdc()
            adc.sample_variation(rng)
            assert run_symbist(adc, deltas).passed

    def test_defect_injection_campaign_and_table_row(self, deltas, rng):
        campaign = DefectCampaign(adc=SarAdc(), deltas=deltas)
        result = campaign.run(SamplingPlan(exhaustive=False, n_samples=60),
                              rng=rng)
        overall = result.overall_report()
        assert 0.5 < overall.coverage.value <= 1.0
        text = format_confidence(overall.coverage.value,
                                 overall.coverage.ci_half_width)
        assert "%" in text and "+/-" in text

    def test_whole_ip_coverage_in_paper_band(self, deltas):
        """Paper Table I: 86.96 % +/- 3.67 % for the complete A/M-S part.

        With a behavioral substrate the absolute value differs; the check is
        that the overall likelihood-weighted coverage lands in the same high
        band (>= 70 %) with the same qualitative block ranking.
        """
        campaign = DefectCampaign(adc=SarAdc(), deltas=deltas)
        result = campaign.run(SamplingPlan(exhaustive=False, n_samples=120),
                              rng=np.random.default_rng(17))
        assert result.overall_report().coverage.value >= 0.70

    def test_block_ranking_matches_table1_shape(self, deltas):
        """High-coverage blocks (SC array, bandgap) must rank above the
        low-L-W blocks (reference buffer, offset compensation)."""
        campaign = DefectCampaign(adc=SarAdc(), deltas=deltas)
        rng = np.random.default_rng(23)
        coverage = {}
        for block, n in (("sc_array", None), ("bandgap", None),
                         ("reference_buffer", 60), ("offset_compensation", None)):
            plan = SamplingPlan(exhaustive=n is None, n_samples=n or 1)
            res = campaign.run(plan, blocks=[block], rng=rng)
            coverage[block] = res.overall_report().coverage.value
        assert coverage["sc_array"] > 0.9
        assert coverage["bandgap"] > 0.7
        assert coverage["reference_buffer"] < 0.2
        assert coverage["offset_compensation"] < 0.4
        assert min(coverage["sc_array"], coverage["bandgap"]) > \
            max(coverage["reference_buffer"], coverage["offset_compensation"])

    def test_test_time_and_area_claims_hold_together(self, adc, deltas):
        result = run_symbist(adc, deltas)
        model = TestTimeModel()
        assert result.test_time == pytest.approx(model.test_time(), rel=1e-9)
        assert result.test_time * 1e6 == pytest.approx(1.23, abs=0.01)
        assert area_overhead(adc).overhead_percent < 5.0

    def test_sequential_and_parallel_agree_on_detection(self, deltas):
        adc = SarAdc()
        adc.sarcell.dac.sc_array.netlist.device("cm_p").defect.value_scale = 1.5
        checkers = [WindowComparator(name=n, delta=d) for n, d in deltas.items()]
        seq = SymBistController(adc, checkers, mode=CheckingMode.SEQUENTIAL).run()
        par = SymBistController(adc, checkers, mode=CheckingMode.PARALLEL).run()
        adc.clear_defects()
        assert seq.detected == par.detected is True
        assert seq.failing_invariances == par.failing_invariances

    def test_symbist_vs_functional_baseline_on_same_defect(self, deltas):
        """Both approaches should catch a hard DAC defect; SymBIST does it
        orders of magnitude faster."""
        adc = SarAdc()
        adc.sarcell.dac.subdac1.netlist.device("swp_16").defect.open_terminal = "p"
        symbist = run_symbist(adc, deltas)
        functional = FunctionalBistBaseline(sine_samples=128).run(adc)
        adc.clear_defects()
        assert symbist.detected
        assert functional.detected
        assert functional.test_time / symbist.test_time > 20

    def test_report_rendering_end_to_end(self, adc, deltas):
        text = summarize_symbist_result(run_symbist(adc, deltas))
        assert "PASS" in text

    def test_digital_and_analog_test_cover_whole_ip(self, deltas):
        """Paper Fig. 1: A/M-S blocks via SymBIST, digital blocks via standard
        digital BIST -- together they constitute the IP-level test."""
        adc = SarAdc()
        analog = run_symbist(adc, deltas)
        digital = LogicBist(build_sar_logic()).run(n_patterns=32)
        assert analog.passed
        assert digital.fault_coverage > 0.85
