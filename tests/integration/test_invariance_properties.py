"""Property-based tests of the central SymBIST invariants.

These are the load-bearing properties of the whole method: the invariances
hold on defect-free circuits for *any* fully-differential input and *any*
counter code (paper Section IV-1), across process variations; and the defect
machinery never leaks state between simulations.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.adc import SarAdc
from repro.circuit import VDD
from repro.core import build_invariances, evaluate_all
from repro.defects import DefectInjector, build_defect_universe

# One shared instance for the hypothesis-driven tests (building a SarAdc is
# cheap but not free; the properties only need a defect-free instance).
_ADC = SarAdc()
_INVARIANCES = build_invariances()


@given(code=st.integers(min_value=0, max_value=31),
       input_diff=st.floats(min_value=-0.6, max_value=0.6))
@settings(max_examples=60, deadline=None)
def test_invariances_hold_for_any_code_and_fd_input(code, input_diff):
    """Paper: the invariances 'hold true for any FD input and at every
    conversion cycle'."""
    op = _ADC.operating_point(input_diff=input_diff)
    signals = _ADC.evaluate_test_cycle(code, op)
    residuals = evaluate_all(_INVARIANCES, signals)
    assert abs(residuals["msb_sum"]) < 1e-3
    assert abs(residuals["lsb_sum"]) < 1e-3
    assert abs(residuals["dac_sum"]) < 2e-3
    assert abs(residuals["preamp_cm"]) < 2e-2
    assert residuals["sign"] == 0.0
    assert abs(residuals["latch_sum"]) < 1e-9


@given(seed=st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_invariances_hold_under_process_variation(seed):
    """Process variations only move the residuals by millivolts (that is what
    the k*sigma window absorbs), never break the symmetry outright."""
    adc = SarAdc()
    adc.sample_variation(np.random.default_rng(seed))
    op = adc.operating_point()
    signals = adc.evaluate_test_cycle(11, op)
    residuals = evaluate_all(_INVARIANCES, signals)
    assert abs(residuals["msb_sum"]) < 0.02
    assert abs(residuals["lsb_sum"]) < 0.02
    assert abs(residuals["dac_sum"]) < 0.05
    assert abs(residuals["latch_sum"]) < 1e-9


@given(defect_index=st.integers(min_value=0, max_value=10 ** 9))
@settings(max_examples=25, deadline=None)
def test_injection_round_trip_never_leaks_state(defect_index):
    """Property: inject-any-defect then remove leaves the IP bit-identical in
    behaviour (the campaign relies on this to simulate thousands of defects
    on one instance)."""
    adc = SarAdc()
    hierarchy = adc.build_hierarchy()
    universe = build_defect_universe(hierarchy)
    defect = universe.defects[defect_index % len(universe)]
    reference = adc.evaluate_test_cycle(9)
    injector = DefectInjector(hierarchy)
    with injector.injected(defect):
        pass
    after = adc.evaluate_test_cycle(9)
    assert after == reference


@given(code=st.integers(min_value=0, max_value=31),
       scale=st.sampled_from([0.5, 1.5]),
       side=st.sampled_from(["p", "n"]))
@settings(max_examples=30, deadline=None)
def test_single_sided_cap_defect_never_increases_symmetry(code, scale, side):
    """Property: a single-sided capacitor deviation can only keep or worsen
    the Eq. (3) residual, never improve it beyond the defect-free value."""
    adc = SarAdc()
    op = adc.operating_point()
    clean = abs(adc.evaluate_test_cycle(code, op)["DAC+"]
                + adc.evaluate_test_cycle(code, op)["DAC-"] - 2 * op.vref[16] * 0)
    clean_res = abs(adc.evaluate_test_cycle(code, op)["DAC+"]
                    + adc.evaluate_test_cycle(code, op)["DAC-"] - VDD)
    adc.sarcell.dac.sc_array.netlist.device(f"cm_{side}").defect.value_scale = scale
    signals = adc.evaluate_test_cycle(code, op)
    defective_res = abs(signals["DAC+"] + signals["DAC-"] - VDD)
    adc.clear_defects()
    assert defective_res >= clean_res - 1e-9


@given(st.integers(min_value=0, max_value=31))
@settings(max_examples=32, deadline=None)
def test_latch_outputs_always_complementary_when_defect_free(code):
    signals = _ADC.evaluate_test_cycle(code)
    assert signals["Q+"] + signals["Q-"] == pytest.approx(VDD, abs=1e-9)
    assert signals["Q+"] in (0.0, VDD)
