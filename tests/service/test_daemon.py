"""CampaignDaemon lifecycle: submit/status/attach/cancel, resume, shutdown.

The daemon runs with ``serial=True`` (in-process execution) so these tests
exercise the control protocol, persistence and scheduling without paying
for worker subprocesses; the socket execution path is covered by
``test_socket_backend.py`` and the backend-equivalence suite.
"""

import json
import os

import pytest

from repro.engine import StudySpec, TelemetryEvent, build_study
from repro.engine.cli import study_payload
from repro.service import (CampaignDaemon, STATE_CANCELLED, STATE_DONE,
                           ServiceError)
from repro.service import client

#: A tiny calibrate -> windows -> campaign study: every daemon test
#: submits some override of it.
TINY_STUDY = {
    "name": "tiny", "seed": 7, "params": {"k": 5.0},
    "stages": [
        {"stage": "calibrate", "params": {"n_monte_carlo": 2}},
        {"stage": "windows", "after": ["calibrate"]},
        {"stage": "campaign", "after": ["windows"],
         "params": {"blocks": ["offset_compensation"], "samples": 3,
                    "exhaustive_threshold": 5}},
    ],
}


def _tiny_spec(name="tiny", seed=7):
    payload = json.loads(json.dumps(TINY_STUDY))
    payload["name"] = name
    payload["seed"] = seed
    return StudySpec.from_jsonable(payload).validated()


@pytest.fixture(scope="module")
def daemon(tmp_path_factory):
    """One serial daemon shared by the whole module: its warm cache makes
    every repeat submission of TINY_STUDY near-free, exactly the
    persistent-service behaviour under test."""
    state_dir = tmp_path_factory.mktemp("daemon") / "svc"
    with CampaignDaemon(str(state_dir), serial=True) as daemon:
        yield daemon


class TestControl:
    def test_ping(self, daemon):
        response = client.ping(daemon.control_address)
        assert response["pong"] and response["workers"] == 1
        assert response["worker_socket"] is None  # serial daemon

    def test_submit_wait_returns_result(self, daemon):
        spec = _tiny_spec()
        response = client.submit(daemon.control_address,
                                 spec.to_jsonable(), wait=True)
        assert response["state"] == STATE_DONE
        result = response["result"]
        assert result["seed"] == 7
        assert [b["block"] for b in result["blocks"]] == \
            ["offset_compensation"]

    def test_result_matches_in_process_run(self, daemon):
        spec = _tiny_spec()
        response = client.submit(daemon.control_address,
                                 spec.to_jsonable(), wait=True)
        plan = build_study(spec)
        expected = study_payload(spec, plan, plan.run(), workers=1)
        got = response["result"]
        # timing/engine keys carry wall-clock noise; everything else is
        # bit-identical (the full guarantee is exercised end-to-end by
        # tools/diff_study_json.py in the CI service-smoke job)
        for payload in (expected, got):
            payload.pop("engine", None)
            for block in payload.get("blocks", ()):
                block.pop("timing", None)
        assert got == expected

    def test_status_lists_studies(self, daemon):
        first = client.submit(daemon.control_address,
                              _tiny_spec("alpha").to_jsonable(), wait=True)
        listing = client.status(daemon.control_address)
        assert first["id"] in [s["id"] for s in listing["studies"]]
        one = client.status(daemon.control_address, first["id"])
        assert one["state"] == STATE_DONE
        assert os.path.exists(one["result_path"])

    def test_status_unknown_id_is_service_error(self, daemon):
        with pytest.raises(ServiceError, match="unknown study id"):
            client.status(daemon.control_address, "s9999-nope")

    def test_malformed_spec_is_service_error(self, daemon):
        with pytest.raises(ServiceError):
            client.submit(daemon.control_address,
                          {"study": {"name": ""}}, wait=True)

    def test_concurrent_submissions_share_the_daemon(self, daemon):
        ids = [client.submit(daemon.control_address,
                             _tiny_spec(f"s{i}", seed=7).to_jsonable())["id"]
               for i in range(3)]
        finals = [client.status(daemon.control_address, study_id)
                  for study_id in ids
                  for _ in (daemon.wait(study_id, timeout=120.0),)]
        assert all(entry["state"] == STATE_DONE for entry in finals)
        # identical specs through the shared cache: everything but the
        # wall-clock noise must agree
        with open(finals[0]["result_path"]) as handle:
            first = json.load(handle)
        with open(finals[-1]["result_path"]) as handle:
            last = json.load(handle)
        for payload in (first, last):
            for block in payload["blocks"]:
                block.pop("timing", None)
        assert first["blocks"] == last["blocks"]


class TestAttach:
    def test_attach_streams_telemetry_schema(self, daemon):
        study_id = client.submit(daemon.control_address,
                                 _tiny_spec().to_jsonable())["id"]
        lines = list(client.attach(daemon.control_address, study_id))
        assert lines, "attach yielded nothing"
        done = lines[-1]
        assert done.get("done") and done["state"] == STATE_DONE
        events = [TelemetryEvent.from_jsonable(line)
                  for line in lines[:-1]]
        types = [event.type for event in events]
        assert types[0] == "run_started" and types[-1] == "run_finished"

    def test_attach_after_completion_replays_full_trace(self, daemon):
        done = client.submit(daemon.control_address,
                             _tiny_spec().to_jsonable(), wait=True)
        lines = list(client.attach(daemon.control_address, done["id"]))
        types = [line.get("type") for line in lines[:-1]]
        assert types[0] == "run_started" and types[-1] == "run_finished"


class TestCancel:
    def test_cancel_before_start(self, tmp_path):
        # max_concurrent=1 and a queue of two: cancel the queued second
        # study before a runner thread ever picks it up.
        with CampaignDaemon(str(tmp_path / "svc"), serial=True,
                            max_concurrent=1) as daemon:
            first = client.submit(daemon.control_address,
                                  _tiny_spec("one").to_jsonable())["id"]
            second = client.submit(daemon.control_address,
                                   _tiny_spec("two", seed=9).to_jsonable(),
                                   )["id"]
            client.cancel(daemon.control_address, second)
            daemon.wait(first, timeout=120.0)
            record = daemon.wait(second, timeout=120.0)
            assert record.state in (STATE_CANCELLED, STATE_DONE)
            # the overwhelmingly common ordering: cancel wins the race
            if record.state == STATE_CANCELLED:
                assert not os.path.exists(daemon.result_path(second))


class TestResume:
    def test_unfinished_studies_resume_on_restart(self, tmp_path):
        state_dir = str(tmp_path / "svc")
        spec = _tiny_spec("resumed", seed=11)
        first = CampaignDaemon(state_dir, serial=True)
        try:
            study_id = first.submit(spec.to_jsonable())
            # simulate a crash before any runner finishes: drop the daemon
            # without waiting (close() interrupts cooperatively and
            # persists non-terminal studies as queued)
            first.request_stop()
        finally:
            first.close()
        with CampaignDaemon(state_dir, serial=True) as second:
            record = second.wait(study_id, timeout=120.0)
            assert record.state == STATE_DONE
            with open(second.result_path(study_id)) as handle:
                result = json.load(handle)
        plan = build_study(spec)
        expected = study_payload(spec, plan, plan.run(), workers=1)
        assert [b["block"] for b in result["blocks"]] == \
            [b["block"] for b in expected["blocks"]]
        assert result["seed"] == expected["seed"]

    def test_done_studies_not_requeued(self, tmp_path):
        state_dir = str(tmp_path / "svc")
        with CampaignDaemon(state_dir, serial=True) as first:
            done = client.submit(first.control_address,
                                 _tiny_spec().to_jsonable(), wait=True)
            finished_at = client.status(first.control_address,
                                        done["id"])["finished_at"]
        with CampaignDaemon(state_dir, serial=True) as second:
            status = client.status(second.control_address, done["id"])
            assert status["state"] == STATE_DONE
            assert status["finished_at"] == finished_at

    def test_shutdown_op_marks_daemon_stopping(self, tmp_path):
        with CampaignDaemon(str(tmp_path / "svc"), serial=True) as daemon:
            client.shutdown(daemon.control_address)
            assert daemon._stopping.wait(5.0)
            with pytest.raises(Exception):
                daemon.submit(_tiny_spec().to_jsonable())


class TestRecordPersistence:
    def test_meta_files_round_trip(self, daemon):
        done = client.submit(daemon.control_address,
                             _tiny_spec().to_jsonable(), wait=True)
        meta_path = os.path.join(daemon.studies_dir,
                                 done["id"] + ".meta.json")
        with open(meta_path) as handle:
            meta = json.load(handle)
        assert meta["state"] == STATE_DONE
        assert meta["id"] == done["id"]

    def test_study_ids_are_sequential_and_slugged(self, daemon):
        a = client.submit(daemon.control_address,
                          _tiny_spec("My Study!").to_jsonable())["id"]
        b = client.submit(daemon.control_address,
                          _tiny_spec("other").to_jsonable())["id"]
        a_serial, a_slug = a.split("-", 1)
        b_serial, b_slug = b.split("-", 1)
        assert a_slug == "my-study" and b_slug == "other"
        assert int(b_serial[1:]) == int(a_serial[1:]) + 1
        daemon.wait(a, timeout=120.0)
        daemon.wait(b, timeout=120.0)
