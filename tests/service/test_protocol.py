"""Wire-layer tests: frames, JSON lines, addresses, listeners."""

import json
import os
import socket
import threading

import pytest

from repro.circuit.errors import EngineError
from repro.service import protocol
from repro.service.protocol import (ProtocolError, connect, create_listener,
                                    encode_frame, format_address,
                                    parse_address, read_json_line,
                                    recv_frame, send_frame, send_json_line)


def _socket_pair():
    left, right = socket.socketpair()
    left.settimeout(5.0)
    right.settimeout(5.0)
    return left, right


class TestFrames:
    def test_round_trip(self):
        left, right = _socket_pair()
        try:
            payload = ("task", 3, 7, {"nested": [1.5, None, "x"]})
            send_frame(left, payload)
            assert recv_frame(right) == payload
        finally:
            left.close()
            right.close()

    def test_many_frames_in_sequence(self):
        left, right = _socket_pair()
        try:
            for i in range(50):
                send_frame(left, ("seq", i))
            for i in range(50):
                assert recv_frame(right) == ("seq", i)
        finally:
            left.close()
            right.close()

    def test_clean_close_returns_none(self):
        left, right = _socket_pair()
        try:
            send_frame(left, ("one",))
            left.close()
            assert recv_frame(right) == ("one",)
            assert recv_frame(right) is None
        finally:
            right.close()

    def test_mid_frame_close_raises(self):
        left, right = _socket_pair()
        try:
            frame = encode_frame(("task", list(range(1000))))
            left.sendall(frame[:len(frame) // 2])
            left.close()
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            right.close()

    def test_oversized_header_rejected_before_allocation(self):
        left, right = _socket_pair()
        try:
            left.sendall(protocol._HEADER.pack(protocol.MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError):
                recv_frame(right)
        finally:
            left.close()
            right.close()

    def test_unpicklable_object_raises(self):
        left, right = _socket_pair()
        try:
            with pytest.raises(EngineError):
                send_frame(left, ("bad", lambda: None))
        finally:
            left.close()
            right.close()


class TestJsonLines:
    def test_round_trip(self):
        left, right = _socket_pair()
        try:
            send_json_line(left, {"op": "submit", "spec": {"name": "s"}})
            send_json_line(left, {"op": "status"})
            with right.makefile("rb") as stream:
                assert read_json_line(stream) == \
                    {"op": "submit", "spec": {"name": "s"}}
                assert read_json_line(stream) == {"op": "status"}
        finally:
            left.close()
            right.close()

    def test_eof_returns_none(self):
        left, right = _socket_pair()
        left.close()
        try:
            with right.makefile("rb") as stream:
                assert read_json_line(stream) is None
        finally:
            right.close()

    def test_garbage_raises_protocol_error(self):
        left, right = _socket_pair()
        try:
            left.sendall(b"this is not json\n")
            with right.makefile("rb") as stream:
                with pytest.raises(ProtocolError):
                    read_json_line(stream)
        finally:
            left.close()
            right.close()

    def test_payload_is_compact_single_line(self):
        left, right = _socket_pair()
        try:
            send_json_line(left, {"a": [1, 2], "b": "x"})
            left.close()
            raw = b"".join(iter(lambda: right.recv(4096), b""))
            assert raw.endswith(b"\n") and raw.count(b"\n") == 1
            assert b" " not in raw.split(b'"x"')[0]  # compact separators
            assert json.loads(raw) == {"a": [1, 2], "b": "x"}
        finally:
            right.close()


class TestAddresses:
    def test_tcp_round_trip(self):
        family, addr = parse_address("tcp:127.0.0.1:8765")
        assert family == socket.AF_INET and addr == ("127.0.0.1", 8765)
        assert format_address(family, addr) == "tcp:127.0.0.1:8765"

    def test_unix_round_trip(self, tmp_path):
        path = str(tmp_path / "x.sock")
        family, addr = parse_address(f"unix:{path}")
        assert family == socket.AF_UNIX and addr == path
        assert format_address(family, addr) == f"unix:{path}"

    def test_bare_path_is_unix(self, tmp_path):
        path = str(tmp_path / "y.sock")
        family, addr = parse_address(path)
        assert family == socket.AF_UNIX and addr == path

    def test_bad_tcp_port_rejected(self):
        with pytest.raises(EngineError):
            parse_address("tcp:127.0.0.1:notaport")


class TestListeners:
    def test_tcp_ephemeral_port_resolved(self):
        listener, resolved = create_listener("tcp:127.0.0.1:0")
        try:
            assert not resolved.endswith(":0")
            sock = connect(resolved, timeout=5.0)
            sock.close()
        finally:
            listener.close()

    def test_unix_listener_and_connect(self, tmp_path):
        spec = f"unix:{tmp_path / 'srv.sock'}"
        listener, resolved = create_listener(spec)
        try:
            assert resolved == spec
            done = threading.Event()

            def _accept():
                conn, _ = listener.accept()
                conn.close()
                done.set()

            threading.Thread(target=_accept, daemon=True).start()
            connect(spec, timeout=5.0).close()
            assert done.wait(5.0)
        finally:
            listener.close()

    def test_stale_unix_socket_replaced(self, tmp_path):
        path = tmp_path / "stale.sock"
        spec = f"unix:{path}"
        listener, _ = create_listener(spec)
        listener.close()  # leaves the filesystem entry behind
        assert path.exists()
        listener, _ = create_listener(spec)  # must reclaim, not fail
        listener.close()

    def test_live_unix_socket_refused(self, tmp_path):
        spec = f"unix:{tmp_path / 'live.sock'}"
        listener, _ = create_listener(spec)
        try:
            with pytest.raises(EngineError):
                create_listener(spec)
        finally:
            listener.close()

    def test_connect_retry_until_listener_appears(self, tmp_path):
        spec = f"unix:{tmp_path / 'late.sock'}"
        holder = {}

        def _bind_late():
            import time
            time.sleep(0.3)
            holder["listener"], _ = create_listener(spec)

        threading.Thread(target=_bind_late, daemon=True).start()
        sock = connect(spec, timeout=5.0, retry_for=5.0)
        sock.close()
        holder["listener"].close()

    def test_connect_no_retry_fails_fast(self, tmp_path):
        with pytest.raises(EngineError):
            connect(f"unix:{tmp_path / 'absent.sock'}", timeout=1.0)
