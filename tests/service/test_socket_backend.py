"""SocketBackend behaviour: ordering, failures, worker death, timeouts.

Work functions are built from :mod:`functools`/:mod:`operator` so they
pickle from inside a test module (closures and lambdas do not).
"""

import functools
import operator
import time

import pytest

from repro.circuit.errors import EngineError
from repro.service import SocketBackend

TRIPLE = functools.partial(operator.mul, 3)
#: 1.0 / item -- raises ZeroDivisionError on item 0.
INVERT = functools.partial(operator.truediv, 1.0)
SLEEP = functools.partial(time.sleep)


@pytest.fixture(scope="module")
def backend():
    """One backend + two spawned workers shared by the whole module; the
    workers persist across tests exactly as they do across daemon runs."""
    with SocketBackend("tcp:127.0.0.1:0", spawn_workers=2) as backend:
        yield backend


class TestMapItems:
    def test_results_in_item_order(self, backend):
        items = list(range(30))
        assert backend.map_items(TRIPLE, items) == [3 * i for i in items]

    def test_on_result_runs_in_completion_order(self, backend):
        seen = []
        backend.map_items(TRIPLE, list(range(10)), on_result=seen.append)
        assert sorted(seen) == [3 * i for i in range(10)]

    def test_failure_raised_after_full_drain(self, backend):
        with pytest.raises(ZeroDivisionError):
            backend.map_items(INVERT, [2, 1, 0, 4])

    def test_empty_items(self, backend):
        assert backend.map_items(TRIPLE, []) == []

    def test_sequential_runs_reuse_workers(self, backend):
        first = backend.map_items(TRIPLE, list(range(5)))
        second = backend.map_items(INVERT, [1, 2, 4])
        assert first == [0, 3, 6, 9, 12]
        assert second == [1.0, 0.5, 0.25]


class TestStream:
    def test_submit_and_drain(self, backend):
        with backend.stream(TRIPLE) as stream:
            for i in range(8):
                stream.submit(i)
            outcomes = [stream.next_outcome() for _ in range(8)]
        assert all(ok for _, ok, _ in outcomes)
        assert sorted((item, value) for item, ok, value in outcomes) == \
            [(i, 3 * i) for i in range(8)]

    def test_failures_reported_not_raised(self, backend):
        with backend.stream(INVERT) as stream:
            stream.submit(0)
            stream.submit(2)
            outcomes = [stream.next_outcome() for _ in range(2)]
        by_item = {item: (ok, value) for item, ok, value in outcomes}
        assert by_item[2] == (True, 0.5)
        ok, err = by_item[0]
        assert not ok and isinstance(err, ZeroDivisionError)

    def test_next_outcome_without_submission_raises(self, backend):
        with backend.stream(TRIPLE) as stream:
            with pytest.raises(EngineError):
                stream.next_outcome()

    def test_interleaved_submit_and_drain(self, backend):
        with backend.stream(TRIPLE) as stream:
            for i in range(20):
                stream.submit(i)
                item, ok, value = stream.next_outcome()
                assert ok and value == 3 * item

    def test_unpicklable_fn_rejected_up_front(self, backend):
        with pytest.raises(EngineError, match="not picklable"):
            backend.stream(lambda item: item)


class TestWorkerDeath:
    def test_dead_worker_task_requeued(self):
        with SocketBackend("tcp:127.0.0.1:0") as backend:
            backend.spawn_worker(crash_after=0)  # dies on its first task
            backend.spawn_worker()
            items = list(range(12))
            assert backend.map_items(TRIPLE, items) == [3 * i for i in items]

    def test_retries_exhausted_reports_failure(self):
        # Every worker dies on its first task; after max_task_retries
        # deaths the item is reported lost instead of retrying forever.
        with SocketBackend("tcp:127.0.0.1:0",
                           max_task_retries=1) as backend:
            backend.spawn_worker(crash_after=0)
            backend.spawn_worker(crash_after=0)
            with backend.stream(TRIPLE) as stream:
                stream.submit(5)
                item, ok, err = stream.next_outcome()
            assert item == 5 and not ok
            assert isinstance(err, EngineError)
            assert "worker death" in str(err)

    def test_hung_worker_times_out_and_requeues(self):
        with SocketBackend("tcp:127.0.0.1:0", task_timeout=1.0,
                           max_task_retries=0) as backend:
            backend.spawn_worker()
            with backend.stream(SLEEP) as stream:
                stream.submit(60)  # sleeps far past task_timeout
                item, ok, err = stream.next_outcome()
            assert item == 60 and not ok
            assert isinstance(err, EngineError)


class TestLifecycle:
    def test_no_workers_times_out_with_hint(self):
        with SocketBackend("tcp:127.0.0.1:0", worker_wait=0.3) as backend:
            with pytest.raises(EngineError, match="worker --connect"):
                backend.map_items(TRIPLE, [1])

    def test_closed_backend_rejects_work(self):
        backend = SocketBackend("tcp:127.0.0.1:0")
        backend.close()
        with pytest.raises(EngineError):
            with backend.stream(TRIPLE) as stream:
                stream.submit(1)
                stream.next_outcome()

    def test_unix_socket_cleaned_up(self, tmp_path):
        path = tmp_path / "backend.sock"
        backend = SocketBackend(f"unix:{path}")
        assert path.exists()
        backend.close()
        assert not path.exists()

    def test_max_tasks_worker_exits_cleanly(self):
        with SocketBackend("tcp:127.0.0.1:0") as backend:
            backend.spawn_worker(max_tasks=3)
            backend.spawn_worker()
            items = list(range(20))
            # the max-tasks worker retires mid-run; no task may be lost
            assert backend.map_items(TRIPLE, items) == [3 * i for i in items]
