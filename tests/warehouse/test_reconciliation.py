"""Warehouse rows must reconcile with the engine's own reporting.

Randomized block-study specs (same seeded-generator discipline as the
backend-equivalence suite) run under serial / multiprocess / shm with a
live :class:`WarehouseSink`; the indexed rows are then checked against the
:class:`CampaignReport` counts, the per-block JSON payload the CLI emits
(``_block_json``) and the stored block-summary artifacts.  A second, warm
run of each case replays every artifact through the cache -- calibrate
residual pools through their ``.npy`` sidecars -- and must produce
bit-identical summaries, which pins the sidecar round-trip in vivo.
"""

import sqlite3

import numpy as np
import pytest

from repro.engine import (MultiprocessBackend, ResultCache, SerialBackend,
                          SharedMemoryBackend, TelemetryBus, block_study)
from repro.engine.cli import _block_json
from repro.warehouse import WarehouseSink, run_canned_query

#: Fixed so the randomized cases are stable across runs.
CASE_ENTROPY = 20200309

SMALL_BLOCKS = ("offset_compensation", "vcm_generator", "preamplifier",
                "rs_latch")


def _random_cases(n=3):
    rng = np.random.default_rng(CASE_ENTROPY)
    cases = []
    for index in range(n):
        picks = rng.choice(len(SMALL_BLOCKS), size=2, replace=False)
        cases.append({
            "id": f"case-{index}",
            "seed": int(rng.integers(0, 2 ** 31)),
            "blocks": [SMALL_BLOCKS[int(i)] for i in picks],
            "samples": int(rng.integers(4, 8)),
            "threshold": int(rng.integers(10, 40)),
            "batch_size": int(rng.choice([1, 3])),
        })
    return cases


CASES = _random_cases()

BACKENDS = {
    "serial": lambda: SerialBackend(),
    "multiprocess": lambda: MultiprocessBackend(max_workers=2),
    "shm": lambda: SharedMemoryBackend(max_workers=2),
}


def _run_case(case, backend, cache, warehouse_db, study):
    bus = TelemetryBus([WarehouseSink(warehouse_db,
                                      cache_dir=cache.cache_dir,
                                      study=study)])
    try:
        return block_study(
            n_monte_carlo=3, seed=case["seed"], blocks=case["blocks"],
            samples=case["samples"],
            exhaustive_threshold=case["threshold"],
            batch_size=case["batch_size"],
            backend=backend, cache=cache, telemetry=bus)
    finally:
        bus.close()


@pytest.mark.parametrize("backend_name", sorted(BACKENDS))
@pytest.mark.parametrize("case", CASES, ids=[c["id"] for c in CASES])
def test_warehouse_reconciles_with_report_and_block_json(
        case, backend_name, tmp_path):
    cache = ResultCache(str(tmp_path / "cache"), namespace="calibration")
    db = str(tmp_path / "wh.sqlite")
    outcome = _run_case(case, BACKENDS[backend_name](), cache, db,
                        study="block-study")
    connection = sqlite3.connect(db)

    # Per-block coverage rows == the CLI's per-block JSON, value for value.
    headers, rows = run_canned_query(connection, "per-block-coverage")
    indexed = {row[headers.index("block")]: row for row in rows}
    assert sorted(indexed) == sorted(case["blocks"])
    for block, result in outcome.results.items():
        expected = _block_json(block, result)
        row = dict(zip(headers, indexed[block]))
        assert row["study"] == "block-study"
        for column in ("n_defects", "n_simulated", "n_detected",
                       "n_escaped", "coverage", "ci_half_width"):
            assert row[column] == expected[column], (block, column)

    # Block-summary rows also match the stored summary artifacts verbatim.
    for block, summary in outcome.summaries.items():
        stored = connection.execute(
            "SELECT n_defects, n_simulated, n_detected, coverage, "
            "wall_time FROM results WHERE stage_kind = 'block-summary' "
            "AND block = ?", (block,)).fetchone()
        assert stored == (summary["n_defects"], summary["n_simulated"],
                          summary["n_detected"], summary["coverage"],
                          summary["wall_time"])

    # Campaign rows aggregate to the CampaignReport per-defect totals.
    report = outcome.report
    n_rows, n_simulated, n_detected = connection.execute(
        "SELECT COUNT(*), SUM(n_simulated), SUM(n_detected) FROM results "
        "WHERE stage_kind = 'campaign'").fetchone()
    total_records = sum(len(result.records)
                        for result in outcome.results.values())
    total_detected = sum(result.n_detected
                         for result in outcome.results.values())
    assert n_simulated == total_records
    assert n_detected == total_detected
    assert n_rows == report.stage_counts["campaign"]

    # Every artifact of the run is indexed: one row per cache entry, and
    # every executed task's row carries its telemetry span.
    assert connection.execute(
        "SELECT COUNT(*) FROM results").fetchone()[0] == len(cache)
    timed = connection.execute(
        "SELECT COUNT(*) FROM results WHERE duration IS NOT NULL"
    ).fetchone()[0]
    assert timed == report.n_executed
    connection.close()


@pytest.mark.parametrize("case", CASES[:1], ids=[CASES[0]["id"]])
def test_warm_replay_through_sidecars_is_bit_identical(case, tmp_path):
    """Cold run writes ``.npy`` sidecars; the warm run replays everything
    through them and must reproduce the summaries bit for bit."""
    cache = ResultCache(str(tmp_path / "cache"), namespace="calibration")
    db = str(tmp_path / "wh.sqlite")
    cold = _run_case(case, SerialBackend(), cache, db, study="cold")
    connection = sqlite3.connect(db)
    sidecars = connection.execute(
        "SELECT SUM(sidecars) FROM results WHERE stage_kind = 'calibrate'"
    ).fetchone()[0]
    connection.close()
    assert sidecars > 0  # residual pools were externalized

    warm = _run_case(case, SerialBackend(), cache, db, study="warm")
    assert warm.report.n_executed == 0
    assert warm.report.n_cache_hits == cold.report.n_tasks
    assert warm.summaries == cold.summaries
    for block, result in cold.results.items():
        warm_records = [(r.defect.defect_id, r.detected, r.detection_cycle,
                         r.cycles_run, r.modeled_sim_time)
                        for r in warm.results[block].records]
        cold_records = [(r.defect.defect_id, r.detected, r.detection_cycle,
                         r.cycles_run, r.modeled_sim_time)
                        for r in result.records]
        assert warm_records == cold_records
    for block, calibration in cold.calibrations.items():
        warm_calibration = warm.calibrations[block]
        assert warm_calibration.sigmas == calibration.sigmas
        assert warm_calibration.means == calibration.means
        assert warm_calibration.deltas == calibration.deltas
