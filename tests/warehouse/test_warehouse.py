"""Unit tests for the warehouse schema, indexer, sink and queries."""

import json
import os
import sqlite3

import pytest

from repro.circuit import EngineError
from repro.engine import ResultCache, TelemetryBus
from repro.warehouse import (CANNED_QUERIES, SCHEMA_VERSION, WarehouseSink,
                             index_cache, open_warehouse, run_canned_query,
                             run_sql)


def _seed_cache(tmp_path):
    """A cache directory holding one artifact of each stage kind."""
    cache = ResultCache(str(tmp_path / "cache"), namespace="test")

    def put(task_id, spec, result, sidecar=False):
        key = cache.key_for(spec)
        cache.put(key, result, task_id=task_id, spec=spec, sidecar=sidecar)
        return key

    keys = {
        "calibrate": put(
            "calib/0",
            {"driver": "symbist-calibration", "factory": "f"},
            {"inv_a": [float(i) for i in range(32)]}, sidecar=True),
        "windows": put(
            "windows/sc_array",
            {"driver": "symbist-block-windows", "block": "sc_array",
             "k": 5.0, "seeds": "sha:abc"},
            {"deltas": {"inv_a": 0.5}}),
        "campaign": put(
            "block/sc_array/0/sc_array:c0:short",
            {"driver": "symbist-block-defect",
             "defect_id": "sc_array:c0:short",
             "windows": {"driver": "symbist-block-windows",
                         "block": "sc_array", "seeds": "sha:abc"}},
            {"defect": {"defect_id": "sc_array:c0:short"},
             "detected": True, "detection_cycle": 3,
             "modeled_sim_time": 1.5, "wall_time": 0.01}),
        "batch": put(
            "block-batch/sc_array/0-2",
            {"driver": "symbist-block-defect-batch",
             "members": [{"defect_id": "a"}, {"defect_id": "b"}],
             "windows": {"block": "sc_array", "seeds": "sha:abc"}},
            [{"detected": True, "modeled_sim_time": 1.0, "wall_time": 0.5},
             {"detected": False, "modeled_sim_time": 2.0,
              "wall_time": 0.25}]),
        "summary": put(
            "summary/sc_array",
            {"driver": "symbist-block-summary", "block": "sc_array"},
            {"block": "sc_array", "n_defects": 54, "n_simulated": 10,
             "n_detected": 9, "coverage": 0.99, "ci_half_width": 0.01,
             "modeled_sim_time": 12.5, "wall_time": 0.5}),
        "yield": put(
            "yield/0/k=3",
            {"driver": "symbist-study-yield", "k": 3.0, "seeds": "sha:y"},
            {"k": 3.0, "analytic_single_check": 0.0027,
             "analytic_per_run": 0.08, "empirical": 0.1,
             "empirical_ci_half_width": 0.02}),
        "escape": put(
            "escape",
            {"driver": "symbist-study-escape", "records": "sha:r"},
            {"n_undetected_total": 4, "records": []}),
    }
    return cache, keys


class TestSchema:
    def test_open_creates_and_stamps_version(self, tmp_path):
        path = str(tmp_path / "wh.sqlite")
        connection = open_warehouse(path)
        version = connection.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()[0]
        connection.close()
        assert version == str(SCHEMA_VERSION)

    def test_readonly_rejects_missing_file(self, tmp_path):
        with pytest.raises(EngineError, match="does not exist"):
            open_warehouse(str(tmp_path / "absent.sqlite"), readonly=True)

    def test_readonly_connection_rejects_writes(self, tmp_path):
        path = str(tmp_path / "wh.sqlite")
        open_warehouse(path).close()
        connection = open_warehouse(path, readonly=True)
        with pytest.raises(EngineError, match="readonly"):
            run_sql(connection, "DELETE FROM results")
        connection.close()

    def test_version_mismatch_is_actionable(self, tmp_path):
        path = str(tmp_path / "wh.sqlite")
        connection = open_warehouse(path)
        connection.execute("UPDATE meta SET value = '999' "
                           "WHERE key = 'schema_version'")
        connection.commit()
        connection.close()
        with pytest.raises(EngineError, match="re-index"):
            open_warehouse(path)

    def test_schema_v1_database_is_rejected(self, tmp_path):
        """A warehouse built before the dut_fingerprint/variant columns
        (schema version 1) must be refused, pointing at re-indexing."""
        path = str(tmp_path / "old.sqlite")
        connection = open_warehouse(path)
        connection.execute("UPDATE meta SET value = '1' "
                           "WHERE key = 'schema_version'")
        connection.commit()
        connection.close()
        with pytest.raises(EngineError) as excinfo:
            open_warehouse(path)
        message = str(excinfo.value)
        assert "schema version 1" in message
        assert str(SCHEMA_VERSION) in message
        assert "re-index" in message

    def test_foreign_sqlite_file_is_rejected(self, tmp_path):
        path = str(tmp_path / "other.sqlite")
        connection = sqlite3.connect(path)
        connection.execute("CREATE TABLE t (x)")
        connection.commit()
        connection.close()
        with pytest.raises(EngineError):
            open_warehouse(path, readonly=True)


class TestIndexer:
    def test_indexes_every_stage_kind(self, tmp_path):
        cache, keys = _seed_cache(tmp_path)
        connection = open_warehouse(str(tmp_path / "wh.sqlite"))
        assert index_cache(connection, cache.cache_dir,
                           study="unit") == len(keys)
        kinds = dict(connection.execute(
            "SELECT stage_kind, COUNT(*) FROM results GROUP BY stage_kind"))
        assert kinds == {"calibrate": 1, "windows": 1, "campaign": 2,
                         "block-summary": 1, "yield": 1, "escape": 1}
        assert connection.execute(
            "SELECT DISTINCT study FROM results").fetchall() == [("unit",)]
        connection.close()

    def test_summary_columns(self, tmp_path):
        cache, keys = _seed_cache(tmp_path)
        connection = open_warehouse(str(tmp_path / "wh.sqlite"))
        index_cache(connection, cache.cache_dir)
        row = connection.execute(
            "SELECT block, n_defects, n_simulated, n_detected, coverage, "
            "ci_half_width, wall_time FROM results WHERE key = ?",
            (keys["summary"],)).fetchone()
        assert row == ("sc_array", 54, 10, 9, 0.99, 0.01, 0.5)
        connection.close()

    def test_campaign_batch_aggregates_records(self, tmp_path):
        cache, keys = _seed_cache(tmp_path)
        connection = open_warehouse(str(tmp_path / "wh.sqlite"))
        index_cache(connection, cache.cache_dir)
        single = connection.execute(
            "SELECT block, n_simulated, n_detected, modeled_sim_time "
            "FROM results WHERE key = ?", (keys["campaign"],)).fetchone()
        assert single == ("sc_array", 1, 1, 1.5)
        batch = connection.execute(
            "SELECT block, n_simulated, n_detected, modeled_sim_time, "
            "wall_time FROM results WHERE key = ?",
            (keys["batch"],)).fetchone()
        assert batch == ("sc_array", 2, 1, 3.0, 0.75)
        connection.close()

    def test_seed_material_and_sidecar_footprint(self, tmp_path):
        cache, keys = _seed_cache(tmp_path)
        connection = open_warehouse(str(tmp_path / "wh.sqlite"))
        index_cache(connection, cache.cache_dir)
        seeds = connection.execute(
            "SELECT seeds FROM results WHERE key = ?",
            (keys["campaign"],)).fetchone()[0]
        assert seeds == "sha:abc"  # lifted from the nested windows spec
        sidecars, sidecar_bytes = connection.execute(
            "SELECT sidecars, sidecar_bytes FROM results WHERE key = ?",
            (keys["calibrate"],)).fetchone()
        npy = os.path.join(cache.cache_dir, f"{keys['calibrate']}.0.npy")
        assert sidecars == 1 and sidecar_bytes == os.stat(npy).st_size
        connection.close()

    def test_reindex_is_idempotent(self, tmp_path):
        cache, keys = _seed_cache(tmp_path)
        connection = open_warehouse(str(tmp_path / "wh.sqlite"))
        index_cache(connection, cache.cache_dir)
        index_cache(connection, cache.cache_dir)
        total = connection.execute(
            "SELECT COUNT(*) FROM results").fetchone()[0]
        assert total == len(keys)
        connection.close()

    def test_foreign_and_torn_files_are_skipped(self, tmp_path):
        cache, keys = _seed_cache(tmp_path)
        with open(os.path.join(cache.cache_dir, "torn.json"), "w",
                  encoding="utf-8") as handle:
            handle.write('{"key": "torn"')  # truncated JSON
        with open(os.path.join(cache.cache_dir, "foreign.json"), "w",
                  encoding="utf-8") as handle:
            json.dump({"no": "spec"}, handle)
        connection = open_warehouse(str(tmp_path / "wh.sqlite"))
        assert index_cache(connection, cache.cache_dir) == len(keys)
        connection.close()

    def test_pre_refactor_artifacts_backfill_with_null_dut(self, tmp_path):
        """Artifacts written before the DUT refactor carry no dut/variant
        spec keys; they index with NULL in both columns (read as "the
        paper's default device, no variant"), not an error."""
        cache, keys = _seed_cache(tmp_path)
        connection = open_warehouse(str(tmp_path / "wh.sqlite"))
        assert index_cache(connection, cache.cache_dir) == len(keys)
        rows = connection.execute(
            "SELECT dut_fingerprint, variant FROM results").fetchall()
        assert rows and all(row == (None, None) for row in rows)
        connection.close()

    def test_dut_and_variant_annotations_index(self, tmp_path):
        """Annotated specs -- own keys or lifted from the nested windows /
        calibration spec -- populate the new identity columns."""
        cache = ResultCache(str(tmp_path / "cache"), namespace="test")
        own_spec = {"driver": "symbist-block-windows", "block": "sc_array",
                    "dut": "deadbeef00000000", "variant": "vdd-low"}
        own = cache.key_for(own_spec)
        cache.put(own, {"deltas": {}}, task_id="vdd-low/windows/sc_array",
                  spec=own_spec)
        nested_spec = {
            "driver": "symbist-block-defect",
            "defect_id": "sc_array:c0:short",
            "windows": {"driver": "symbist-block-windows",
                        "block": "sc_array", "seeds": "sha:abc",
                        "dut": "deadbeef00000000", "variant": "vdd-low"}}
        nested = cache.key_for(nested_spec)
        cache.put(nested,
                  {"defect": {"defect_id": "sc_array:c0:short"},
                   "detected": True, "modeled_sim_time": 1.0,
                   "wall_time": 0.01},
                  task_id="vdd-low/block/sc_array/0/sc_array:c0:short",
                  spec=nested_spec)
        connection = open_warehouse(str(tmp_path / "wh.sqlite"))
        assert index_cache(connection, cache.cache_dir) == 2
        for key in (own, nested):
            assert connection.execute(
                "SELECT dut_fingerprint, variant FROM results "
                "WHERE key = ?", (key,)).fetchone() == \
                ("deadbeef00000000", "vdd-low")
        assert connection.execute(
            "SELECT COUNT(*) FROM results WHERE variant = 'vdd-low'"
        ).fetchone()[0] == 2
        connection.close()

    def test_flat_campaign_drivers_take_block_from_records(self, tmp_path):
        """`repro-campaign campaign` artifacts (flat `DefectCampaign.run`
        ids like ``defect/0/...``) carry no block in the spec; the records'
        own ``defect.block_path`` names it.  A flat batch spanning several
        blocks stays NULL."""
        cache = ResultCache(str(tmp_path / "cache"), namespace="defects")
        single_spec = {"driver": "symbist-defect-campaign",
                       "defect_id": "rs_latch.nor1:mos:short"}
        single = cache.key_for(single_spec)
        cache.put(single,
                  {"defect": {"defect_id": "rs_latch.nor1:mos:short",
                              "block_path": "rs_latch"},
                   "detected": True, "modeled_sim_time": 1.0,
                   "wall_time": 0.01},
                  task_id="defect/0/rs_latch.nor1:mos:short",
                  spec=single_spec)
        batch_spec = {"driver": "symbist-defect-batch",
                      "members": [{"defect_id": "a"}, {"defect_id": "b"}]}
        batch = cache.key_for(batch_spec)
        cache.put(batch,
                  [{"defect": {"defect_id": "a", "block_path": "rs_latch"},
                    "detected": True, "modeled_sim_time": 1.0,
                    "wall_time": 0.01},
                   {"defect": {"defect_id": "b",
                               "block_path": "vcm_generator"},
                    "detected": False, "modeled_sim_time": 2.0,
                    "wall_time": 0.02}],
                  task_id="defect-batch/0-2", spec=batch_spec)
        connection = open_warehouse(str(tmp_path / "wh.sqlite"))
        assert index_cache(connection, cache.cache_dir) == 2
        assert connection.execute(
            "SELECT stage_kind, block, n_simulated, n_detected FROM results "
            "WHERE key = ?", (single,)).fetchone() == \
            ("campaign", "rs_latch", 1, 1)
        assert connection.execute(
            "SELECT stage_kind, block, n_simulated, n_detected FROM results "
            "WHERE key = ?", (batch,)).fetchone() == ("campaign", None, 2, 1)
        connection.close()

    def test_reindex_without_spans_preserves_timings_and_study(
            self, tmp_path):
        """A warm replay or offline backfill has no telemetry spans (and
        maybe no study name); re-indexing must keep the values captured by
        the run that executed the task, not erase them."""
        cache, keys = _seed_cache(tmp_path)
        db = str(tmp_path / "wh.sqlite")
        bus = TelemetryBus([WarehouseSink(db, cache_dir=cache.cache_dir,
                                          study="cold")])
        bus.emit("run_started", n_tasks=1)
        bus.emit("task_completed", task_id="summary/sc_array",
                 queue_wait=0.25, execute=1.5, duration=2.25)
        bus.emit("run_finished", n_tasks=1)
        bus.close()
        connection = open_warehouse(db)
        index_cache(connection, cache.cache_dir)  # no study, no timings
        assert connection.execute(
            "SELECT study, queue_wait, execute, duration FROM results "
            "WHERE key = ?", (keys["summary"],)).fetchone() == \
            ("cold", 0.25, 1.5, 2.25)
        # A run that re-executes the task does overwrite the span.
        index_cache(connection, cache.cache_dir, study="hot",
                    timings={"summary/sc_array": {"duration": 9.0}})
        assert connection.execute(
            "SELECT study, duration FROM results WHERE key = ?",
            (keys["summary"],)).fetchone() == ("hot", 9.0)
        connection.close()

    def test_missing_cache_dir_is_an_error(self, tmp_path):
        connection = open_warehouse(str(tmp_path / "wh.sqlite"))
        with pytest.raises(EngineError, match="cannot index"):
            index_cache(connection, str(tmp_path / "absent"))
        connection.close()


class TestWarehouseSink:
    def test_indexes_on_run_finished_with_timings(self, tmp_path):
        cache, keys = _seed_cache(tmp_path)
        db = str(tmp_path / "wh.sqlite")
        bus = TelemetryBus([WarehouseSink(db, cache_dir=cache.cache_dir,
                                          study="sink")])
        bus.emit("run_started", n_tasks=1)
        bus.emit("task_completed", task_id="summary/sc_array",
                 stage="summary", worker=123, queue_wait=0.25,
                 deserialize=0.0, execute=1.5, ship=0.5, duration=2.25)
        bus.emit("run_finished", n_tasks=1, wall_time=2.5)
        bus.close()
        connection = sqlite3.connect(db)
        row = connection.execute(
            "SELECT study, queue_wait, execute, duration FROM results "
            "WHERE key = ?", (keys["summary"],)).fetchone()
        assert row == ("sink", 0.25, 1.5, 2.25)
        # Rows whose task never executed (cache hits, other artifacts)
        # index with NULL timings.
        assert connection.execute(
            "SELECT duration FROM results WHERE key = ?",
            (keys["yield"],)).fetchone() == (None,)
        connection.close()

    def test_no_index_before_run_finished(self, tmp_path):
        cache, _ = _seed_cache(tmp_path)
        db = str(tmp_path / "wh.sqlite")
        bus = TelemetryBus([WarehouseSink(db, cache_dir=cache.cache_dir)])
        bus.emit("run_started", n_tasks=1)
        bus.close()
        assert not os.path.exists(db)


class TestQueries:
    def test_per_block_coverage_matches_summary_artifact(self, tmp_path):
        cache, _ = _seed_cache(tmp_path)
        connection = open_warehouse(str(tmp_path / "wh.sqlite"))
        index_cache(connection, cache.cache_dir, study="unit")
        headers, rows = run_canned_query(connection, "per-block-coverage")
        assert headers == ["study", "block", "n_defects", "n_simulated",
                           "n_detected", "n_escaped", "coverage",
                           "ci_half_width"]
        assert rows == [("unit", "sc_array", 54, 10, 9, 1, 0.99, 0.01)]
        connection.close()

    def test_cache_composition_accounts_all_artifacts(self, tmp_path):
        cache, keys = _seed_cache(tmp_path)
        connection = open_warehouse(str(tmp_path / "wh.sqlite"))
        index_cache(connection, cache.cache_dir)
        headers, rows = run_canned_query(connection, "cache-composition")
        by_kind = {row[0]: row for row in rows}
        assert sum(row[1] for row in rows) == len(keys)
        total = sum(row[headers.index("total_bytes")] for row in rows)
        assert total == cache.total_bytes()
        assert by_kind["calibrate"][headers.index("sidecar_files")] == 1
        connection.close()

    def test_slowest_stages_uses_live_timings(self, tmp_path):
        cache, keys = _seed_cache(tmp_path)
        db = str(tmp_path / "wh.sqlite")
        bus = TelemetryBus([WarehouseSink(db, cache_dir=cache.cache_dir)])
        bus.emit("run_started", n_tasks=2)
        bus.emit("task_completed", task_id="summary/sc_array",
                 duration=2.0, execute=1.9)
        bus.emit("task_completed", task_id="yield/0/k=3",
                 duration=5.0, execute=4.9)
        bus.emit("run_finished", n_tasks=2)
        bus.close()
        connection = open_warehouse(db, readonly=True)
        headers, rows = run_canned_query(connection, "slowest-stages")
        connection.close()
        assert [row[0] for row in rows] == ["yield", "block-summary"]
        assert rows[0][headers.index("duration")] == 5.0

    def test_unknown_report_lists_available(self, tmp_path):
        connection = open_warehouse(str(tmp_path / "wh.sqlite"))
        with pytest.raises(EngineError) as excinfo:
            run_canned_query(connection, "nope")
        for name in CANNED_QUERIES:
            assert name in str(excinfo.value)
        connection.close()

    def test_sql_error_is_engine_error(self, tmp_path):
        connection = open_warehouse(str(tmp_path / "wh.sqlite"))
        with pytest.raises(EngineError, match="query failed"):
            run_sql(connection, "SELECT nonsense FROM nowhere")
        connection.close()
