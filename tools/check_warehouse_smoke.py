#!/usr/bin/env python3
"""Reconcile a warehouse report with a study's own JSON payload.

``check_warehouse_smoke.py STUDY.json QUERY.json`` — CI smoke check for the
result warehouse: after indexing the smoke run's cache, the
``per-block-coverage`` canned query (the ``--json`` payload of
``repro-campaign warehouse query per-block-coverage``) must return exactly
one row per block of the study payload, with the coverage columns matching
the per-block JSON value for value.

Exits non-zero with one line per mismatch.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List

#: Query columns that must equal the same-named per-block JSON keys.
RECONCILED_COLUMNS = [
    "block", "n_defects", "n_simulated", "n_detected", "n_escaped",
    "coverage", "ci_half_width",
]


def check(study: Dict[str, Any], query: Dict[str, Any]) -> List[str]:
    problems = []
    headers = query.get("headers", [])
    missing = [column for column in RECONCILED_COLUMNS
               if column not in headers]
    if missing:
        return [f"query payload lacks columns {missing}; got {headers}"]
    indexed = {}
    for row in query.get("rows", []):
        record = dict(zip(headers, row))
        indexed[record["block"]] = record
    blocks = study.get("blocks", [])
    if not blocks:
        problems.append("study payload has no blocks")
    if sorted(indexed) != sorted(b.get("block") for b in blocks):
        problems.append(
            f"block sets differ: warehouse has {sorted(indexed)}, study "
            f"has {sorted(b.get('block') for b in blocks)}")
        return problems
    for block in blocks:
        record = indexed[block["block"]]
        for column in RECONCILED_COLUMNS:
            if record[column] != block[column]:
                problems.append(
                    f"block {block['block']}: {column} differs: warehouse "
                    f"{record[column]!r} vs study {block[column]!r}")
    return problems


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    payloads = []
    for path in argv:
        with open(path, encoding="utf-8") as handle:
            payloads.append(json.load(handle))
    problems = check(*payloads)
    for problem in problems:
        print(f"warehouse-smoke: {problem}", file=sys.stderr)
    if not problems:
        print(f"warehouse-smoke: {len(payloads[0]['blocks'])} blocks "
              f"reconciled with the warehouse")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
