#!/usr/bin/env python3
"""Diff two campaign-JSON payloads: ``diff_study_json.py A.json B.json``.

CI smoke check for the declarative study layer: ``repro-campaign run`` on a
canned spec and the corresponding legacy subcommand must emit the same
top-level schema, the same per-block schema and -- under one root seed --
the same deterministic per-block numbers.  Engine/timing values (wall
clock, tasks/s, worker counts) legitimately differ between runs and are
not compared.

Exits non-zero with one line per mismatch.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, List

#: Per-block keys whose values are deterministic under a fixed root seed.
DETERMINISTIC_BLOCK_KEYS = [
    "block", "n_defects", "n_simulated", "n_detected", "n_escaped",
    "coverage", "ci_half_width", "dut_fingerprint", "variant",
]


def diff(a: Dict[str, Any], b: Dict[str, Any],
         a_name: str, b_name: str) -> List[str]:
    problems = []
    if set(a) != set(b):
        problems.append(
            f"top-level keys differ: {a_name} has {sorted(set(a) - set(b))} "
            f"extra, {b_name} has {sorted(set(b) - set(a))} extra")
    for key in ("dut", "variant"):
        if a.get(key) != b.get(key):
            problems.append(f"{key} differs: "
                            f"{a.get(key)!r} vs {b.get(key)!r}")
    if "deltas" in a and "deltas" in b and a["deltas"] != b["deltas"]:
        problems.append("window deltas differ")
    # Multi-variant payloads: the per-variant fragments carry the same
    # shape as a single-device payload; diff them pairwise by label.
    variants_a = a.get("variants")
    variants_b = b.get("variants")
    if isinstance(variants_a, list) or isinstance(variants_b, list):
        variants_a, variants_b = variants_a or [], variants_b or []
        names_a = [v.get("variant") for v in variants_a]
        names_b = [v.get("variant") for v in variants_b]
        if names_a != names_b:
            problems.append(f"variant labels differ: {names_a} vs {names_b}")
            return problems
        for fragment_a, fragment_b in zip(variants_a, variants_b):
            label = fragment_a.get("variant")
            problems.extend(
                f"variant {label}: {problem}"
                for problem in diff(fragment_a, fragment_b, a_name, b_name))
        return problems
    blocks_a = a.get("blocks", [])
    blocks_b = b.get("blocks", [])
    if len(blocks_a) != len(blocks_b):
        problems.append(
            f"block counts differ: {len(blocks_a)} vs {len(blocks_b)}")
        return problems
    for index, (block_a, block_b) in enumerate(zip(blocks_a, blocks_b)):
        label = block_a.get("block", f"#{index}")
        if set(block_a) != set(block_b):
            problems.append(f"block {label}: per-block keys differ: "
                            f"{sorted(set(block_a) ^ set(block_b))}")
            continue
        for key in DETERMINISTIC_BLOCK_KEYS:
            if block_a.get(key) != block_b.get(key):
                problems.append(
                    f"block {label}: {key} differs: "
                    f"{block_a.get(key)!r} vs {block_b.get(key)!r}")
    return problems


def main(argv: List[str]) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    payloads = []
    for path in argv:
        with open(path, "r", encoding="utf-8") as handle:
            payloads.append(json.load(handle))
    problems = diff(payloads[0], payloads[1], argv[0], argv[1])
    for problem in problems:
        print(f"diff-study-json: {problem}", file=sys.stderr)
    if not problems:
        print(f"diff-study-json: {argv[0]} == {argv[1]} "
              f"(schema + deterministic per-block values)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
