#!/usr/bin/env python3
"""Documentation linter run by CI (and locally: ``python tools/docs_lint.py``).

Checks, over ``README.md`` and ``docs/*.md``:

1. the required documentation files exist;
2. every relative markdown link ``[text](target)`` resolves to a file in the
   repository (anchors are stripped; external ``scheme://`` links and bare
   anchors are ignored);
3. every fenced help block annotated with ``<!-- verify-help: ARGS -->``
   matches the real output of ``repro-campaign ARGS``.  The comparison is
   token-based (whitespace-insensitive), so argparse line-wrapping
   differences between Python versions do not produce false alarms while
   any added/removed/renamed option still fails the check.

Exits non-zero with one line per problem.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
from typing import List, Tuple

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

REQUIRED_FILES = [
    "README.md",
    "docs/architecture.md",
    "docs/engine.md",
    "docs/cli.md",
    "docs/service.md",
]

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
HELP_MARKER_RE = re.compile(r"<!--\s*verify-help:\s*(.*?)\s*-->")
FENCE_RE = re.compile(r"^```")


def _doc_files() -> List[str]:
    files = [name for name in REQUIRED_FILES
             if os.path.exists(os.path.join(REPO_ROOT, name))]
    docs_dir = os.path.join(REPO_ROOT, "docs")
    if os.path.isdir(docs_dir):
        for name in sorted(os.listdir(docs_dir)):
            rel = os.path.join("docs", name)
            if name.endswith(".md") and rel not in files:
                files.append(rel)
    return files


def check_required_files() -> List[str]:
    return [f"missing required documentation file: {name}"
            for name in REQUIRED_FILES
            if not os.path.exists(os.path.join(REPO_ROOT, name))]


def check_links(rel_path: str, text: str) -> List[str]:
    problems = []
    base = os.path.dirname(os.path.join(REPO_ROOT, rel_path))
    for lineno, line in enumerate(text.splitlines(), start=1):
        for target in LINK_RE.findall(line):
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            resolved = os.path.normpath(
                os.path.join(base, target.split("#", 1)[0]))
            if not os.path.exists(resolved):
                problems.append(
                    f"{rel_path}:{lineno}: broken link target {target!r}")
    return problems


def _help_blocks(text: str) -> List[Tuple[int, str, str]]:
    """``(lineno, args, block_text)`` for every annotated help block."""
    blocks = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        marker = HELP_MARKER_RE.search(lines[i])
        if marker:
            args, start = marker.group(1), i + 1
            # The fenced block must open on the next non-empty line.
            while start < len(lines) and not lines[start].strip():
                start += 1
            if start >= len(lines) or not FENCE_RE.match(lines[start]):
                blocks.append((i + 1, args, None))
                i += 1
                continue
            body = []
            j = start + 1
            while j < len(lines) and not FENCE_RE.match(lines[j]):
                body.append(lines[j])
                j += 1
            blocks.append((i + 1, args, "\n".join(body)))
            i = j
        i += 1
    return blocks


def check_help_snippets(rel_path: str, text: str) -> List[str]:
    problems = []
    env = dict(os.environ, COLUMNS="80",
               PYTHONPATH=os.path.join(REPO_ROOT, "src")
               + os.pathsep + os.environ.get("PYTHONPATH", ""))
    for lineno, args, block in _help_blocks(text):
        if block is None:
            problems.append(
                f"{rel_path}:{lineno}: verify-help marker is not followed "
                f"by a fenced code block")
            continue
        command = [sys.executable, "-m", "repro.engine.cli"] + args.split()
        proc = subprocess.run(command, capture_output=True, text=True,
                              env=env, cwd=REPO_ROOT)
        # argparse --help exits 0; any other status means the args are stale.
        if proc.returncode != 0:
            detail = (proc.stderr.strip().splitlines() or ["<no stderr>"])[-1]
            problems.append(
                f"{rel_path}:{lineno}: `repro-campaign {args}` exited "
                f"{proc.returncode}: {detail}")
            continue
        if proc.stdout.split() != block.split():
            problems.append(
                f"{rel_path}:{lineno}: help snippet for "
                f"`repro-campaign {args}` is out of date; regenerate with "
                f"`COLUMNS=80 PYTHONPATH=src python -m repro.engine.cli "
                f"{args}`")
    return problems


def main() -> int:
    problems = check_required_files()
    for rel_path in _doc_files():
        with open(os.path.join(REPO_ROOT, rel_path),
                  encoding="utf-8") as handle:
            text = handle.read()
        problems.extend(check_links(rel_path, text))
        problems.extend(check_help_snippets(rel_path, text))
    for problem in problems:
        print(f"docs-lint: {problem}", file=sys.stderr)
    if not problems:
        print(f"docs-lint: {len(_doc_files())} files ok")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
