#!/usr/bin/env python3
"""DUT-constant linter run by CI (and locally: ``python tools/dut_constants_lint.py``).

The parametric-DUT refactor made the device under test declarative data
(:class:`repro.dut.DutSpec`): the ADC model and the functional-test layer
take every device parameter from the spec threaded through their
constructors.  A module-constant read of the resolution or the nominal
common mode inside those packages would silently pin a swept parameter
back to the paper's default device -- an 8-bit variant would quantise to
10 bits somewhere in the middle of the signal chain and nothing would
crash.

This linter greps ``src/repro/adc`` and ``src/repro/functional_test`` for
the constant spellings the refactor eliminated:

* ``ADC_BITS`` / ``VCM_NOMINAL`` -- the legacy module constants; and
* ``2 ** 10`` / ``2**10`` / ``1 << 10`` / ``1<<10`` -- a hard-coded
  10-bit code count (use ``dut.n_codes`` / ``dut.resolution_bits``).

Lines inside comments are still flagged on purpose (a commented-out
constant read is a resurrection waiting to happen); a deliberate mention
-- say, in a docstring explaining this very history -- can be suppressed
with a trailing ``# dut-lint: allow``.

Exits non-zero with one ``file:line`` per offence.
"""

from __future__ import annotations

import os
import re
import sys
from typing import List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LINTED_DIRS = [
    os.path.join("src", "repro", "adc"),
    os.path.join("src", "repro", "functional_test"),
]

FORBIDDEN = [
    (re.compile(r"\bADC_BITS\b"),
     "legacy ADC_BITS constant; use dut.resolution_bits"),
    (re.compile(r"\bVCM_NOMINAL\b"),
     "legacy VCM_NOMINAL constant; use dut.common_mode"),
    (re.compile(r"\b2\s*\*\*\s*10\b"),
     "hard-coded 10-bit code count; use dut.n_codes"),
    (re.compile(r"\b1\s*<<\s*10\b"),
     "hard-coded 10-bit code count; use dut.n_codes"),
]

ALLOW_MARKER = "dut-lint: allow"


def lint_file(rel_path: str) -> List[str]:
    problems = []
    with open(os.path.join(REPO_ROOT, rel_path), encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            if ALLOW_MARKER in line:
                continue
            for pattern, why in FORBIDDEN:
                if pattern.search(line):
                    problems.append(f"{rel_path}:{lineno}: {why} "
                                    f"({line.strip()!r})")
    return problems


def main() -> int:
    problems = []
    checked = 0
    for lint_dir in LINTED_DIRS:
        root = os.path.join(REPO_ROOT, lint_dir)
        if not os.path.isdir(root):
            problems.append(f"missing linted directory: {lint_dir}")
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), REPO_ROOT)
                problems.extend(lint_file(rel))
                checked += 1
    for problem in problems:
        print(f"dut-lint: {problem}", file=sys.stderr)
    if not problems:
        print(f"dut-lint: {checked} files ok")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
